"""Golden regression pins: exact values for a fixed seed.

These protect against silent behavioural drift: the corpus generator and
every deterministic algorithm must keep producing bit-identical results
for the pinned seed. If an intentional algorithm change breaks one of
these, update the pinned value *in the same change* and say why.
"""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.machine.machine import FS4, GP2
from repro.schedulers.base import schedule
from repro.workloads.generator import generate_superblock
from repro.workloads.profiles import profile_by_name


class TestGoldenExamples:
    def test_figure_wcts(self):
        """The paper-example analyses, pinned exactly."""
        cases = [
            (figure1(), "sr", 7.5),
            (figure1(), "cp", 8.25),
            (figure2(), "balance", 3.6),
            (figure3(), "balance", 4.8),
            (figure3(), "help", 5.4),
            (figure4(0.3), "balance", 8.8),
            (figure4(0.7), "balance", 6.4),
        ]
        for sb, heuristic, expected in cases:
            s = schedule(sb, GP2, heuristic)
            assert s.wct == pytest.approx(expected), (sb.name, heuristic)

    def test_figure4_pair_curve(self):
        res = BoundSuite(figure4(0.3), GP2).compute()
        curve = [
            (p.separation, p.x, p.y) for p in res.pair_bounds[(6, 18)].curve
        ]
        assert curve == [
            (4, 5, 9), (5, 5, 10), (6, 4, 10), (7, 4, 11), (8, 3, 11)
        ]


class TestGoldenGenerator:
    def test_pinned_superblock_structure(self):
        sb = generate_superblock(profile_by_name("gcc"), 0, seed=1999)
        assert sb.num_operations == 26
        assert sb.branches == (0, 2, 7, 13, 25)
        assert sb.exec_freq == pytest.approx(7.866)

    def test_pinned_bounds(self):
        sb = generate_superblock(profile_by_name("gcc"), 0, seed=1999)
        res = BoundSuite(sb, FS4).compute()
        suite = BoundSuite(sb, FS4)
        assert res.branch_bounds["LC"] == {
            b: suite.early_rc[b] for b in sb.branches
        }
        assert res.tightest == pytest.approx(res.wct["TW"])

    def test_pinned_balance_schedule(self):
        sb = generate_superblock(profile_by_name("gcc"), 0, seed=1999)
        s = schedule(sb, FS4, "balance")
        bound = BoundSuite(sb, FS4).compute().tightest
        # This block is scheduled at its bound today; keep it that way.
        assert s.wct <= bound + 1e-9
