"""Integration tests for the Table 1-7 and Figure 8 builders.

These run tiny corpora through the full harness and check shapes and the
headline qualitative claims, not exact numbers.
"""

import pytest

from repro.bounds.superblock_bounds import BOUND_NAMES
from repro.eval.figures import FIGURE8_THRESHOLDS, figure8, figure_schedules
from repro.eval.sched_eval import evaluate_corpus
from repro.eval.tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.machine.machine import FS4, GP1, GP2
from repro.workloads.corpus import specint95_corpus

MACHINES = (GP1, FS4)
HEUR = ("sr", "cp", "dhasy", "help", "balance")


@pytest.fixture(scope="module")
def corpus():
    return specint95_corpus(scale=16, seed=3, max_ops=36)


class TestTable1:
    def test_shape_and_dominance(self, corpus):
        t = table1(corpus, gp_machines=(GP1, GP2), fs_machines=(FS4,))
        assert t.headers == ["Metric"] + list(BOUND_NAMES)
        assert len(t.rows) == 6  # 2 groups x {Avg, Max, Num}
        for group in ("GP", "FS"):
            q = t.data[group]
            # CP is the weakest bound; TW never has a positive gap.
            assert q["CP"].avg_gap_percent >= q["RJ"].avg_gap_percent
            assert q["RJ"].avg_gap_percent >= q["LC"].avg_gap_percent - 1e-9
            assert q["TW"].avg_gap_percent == pytest.approx(0.0)
            assert q["TW"].max_gap_percent == pytest.approx(0.0)

    def test_render_contains_rows(self, corpus):
        t = table1(corpus, gp_machines=(GP1,), fs_machines=(FS4,))
        text = t.render()
        assert "Table 1" in text
        assert "GP Avg%" in text and "FS Num%" in text


class TestTable2:
    def test_cost_ordering(self, corpus):
        t = table2(corpus, machines=(FS4,))
        costs = t.data["costs"]
        # The recursive/pair algorithms do more work than the basics.
        assert costs["LC"].average_trips >= costs["RJ"].average_trips
        assert costs["PW"].average_trips >= 0
        # Theorem 1 saves work vs the original LC.
        assert costs["LC"].average_trips <= costs["LC-original"].average_trips

    def test_includes_all_rows(self, corpus):
        t = table2(corpus, machines=(FS4,))
        names = [row[0] for row in t.rows]
        for n in ("CP", "Hu", "RJ", "LC", "LC-original", "LC-reverse", "PW", "TW"):
            assert n in names


class TestTable3:
    def test_balance_wins(self, corpus):
        t = table3(corpus, machines=MACHINES, heuristics=HEUR)
        summaries = t.data["summaries"]
        for m in MACHINES:
            s = summaries[m.name]
            for h in HEUR:
                assert s.slowdown_percent("balance") <= s.slowdown_percent(h) + 1e-9
        # Average row appended.
        assert t.rows[-1][0] == "Average"

    def test_trivial_fraction_in_range(self, corpus):
        t = table3(corpus, machines=(FS4,), heuristics=HEUR)
        triv = t.rows[0][2]
        assert 0.0 <= triv <= 100.0


class TestTable4:
    def test_strategy_columns(self, corpus):
        t = table4(corpus, machines=(FS4,), heuristics=HEUR)
        assert t.headers[-2:] == ["DHASY->Balance", "Rescheduled%"]
        strategy = t.data["strategy"]["FS4"]
        assert 0 <= strategy["rescheduled_percent"] <= 100
        # The combined strategy is at least as good as DHASY alone.
        summary = t.data["summaries"]["FS4"]
        dhasy_pct = 100 * summary.optimal_fraction("dhasy")
        assert strategy["strategy_optimal_percent"] >= dhasy_pct - 1e-9


class TestTable5:
    def test_noprofile_never_improves_balance(self, corpus):
        profiled = table3(corpus, machines=(FS4,), heuristics=HEUR)
        t5 = table5(
            corpus,
            machines=(FS4,),
            heuristics=HEUR,
            profiled_summaries=profiled.data["summaries"],
        )
        assert t5.rows[-1][0] == "Delta vs profiled"
        # SR and CP ignore weights entirely: delta must be ~0.
        sr_delta = t5.rows[-1][1]
        cp_delta = t5.rows[-1][2]
        assert sr_delta == pytest.approx(0.0, abs=1e-9)
        assert cp_delta == pytest.approx(0.0, abs=1e-9)


class TestTable6:
    def test_timing_rows(self, corpus):
        small = type(corpus)(name="s", superblocks=corpus.superblocks[:4])
        t = table6(small, FS4)
        names = [row[0] for row in t.rows]
        assert "Balance" in names and "balance-percycle" in names
        for row in t.rows:
            assert row[3] > 0  # avg microseconds


class TestTable7:
    def test_grid_shape(self, corpus):
        small = type(corpus)(name="s", superblocks=corpus.superblocks[:8])
        t = table7(small, machines=(FS4,))
        assert len(t.rows) == 2
        assert t.rows[0][0] == "once per cycle"
        assert t.rows[1][0] == "once per op"
        assert len(t.headers) == 6  # Update + 5 combos

    def test_full_balance_at_least_as_good_as_help(self, corpus):
        small = type(corpus)(name="s", superblocks=corpus.superblocks[:8])
        t = table7(small, machines=(FS4,))
        per_op = t.rows[1]
        help_slow = per_op[1]
        balance_slow = per_op[5]
        assert balance_slow <= help_slow + 1e-9


class TestFigure8:
    def test_cdf_monotone_and_anchored(self, corpus):
        fig = figure8(corpus, FS4, heuristics=HEUR)
        for name, pts in fig.series.items():
            ys = [y for _x, y in pts]
            assert all(b >= a - 1e-12 for a, b in zip(ys, ys[1:]))
            assert pts[-1][1] == pytest.approx(1.0)
            assert len(pts) == len(FIGURE8_THRESHOLDS)

    def test_balance_intercept_at_least_cp(self, corpus):
        fig = figure8(corpus, FS4, heuristics=HEUR)
        y0 = {name: pts[0][1] for name, pts in fig.series.items()}
        assert y0["balance"] >= y0["cp"] - 1e-9

    def test_render(self, corpus):
        fig = figure8(corpus, FS4, heuristics=("balance",))
        assert "Figure 8" in fig.render()


class TestFigureExamples:
    def test_figure_schedules_text(self):
        text = figure_schedules(heuristics=("cp", "balance"))
        for fig in ("figure1", "figure2", "figure3", "figure4"):
            assert fig in text
        assert "balance" in text
