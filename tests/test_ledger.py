"""Run ledger: recorder semantics, hardened ingestion, CLI bit-identity.

The hardening pins mirror ``trace.load_jsonl``'s: every malformed-ledger
test asserts the error names ``path:lineno`` so a damaged history is
debuggable from the message alone. The CLI tests pin the tentpole
contract — results and counters are bit-identical with the ledger on or
off — and the overhead gate quantifies "free when on" the same way the
PR 2 no-op tracer gate did.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.eval.sched_eval import evaluate_corpus
from repro.ir.examples import figure2
from repro.ir.serialize import superblock_to_dict
from repro.kernels import forced as forced_kernel
from repro.machine.machine import FS4
from repro.obs import ledger
from repro.workloads.corpus import specint95_corpus


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(superblock_to_dict(figure2())))
    return str(path)


def _record(run_id: str = "r1", command: str = "table1", **extra) -> dict:
    record = {
        "schema": ledger.SCHEMA_VERSION,
        "run_id": run_id,
        "timestamp": 1000.0,
        "command": command,
    }
    record.update(extra)
    return record


# ---------------------------------------------------------------------------
# Persistence round trip
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_append_and_load(self, tmp_path):
        for i in range(3):
            ledger.append_run(_record(run_id=f"r{i}"), tmp_path)
        records = ledger.load_ledger(ledger.ledger_path(tmp_path))
        assert [r["run_id"] for r in records] == ["r0", "r1", "r2"]

    def test_load_accepts_the_directory_itself(self, tmp_path):
        ledger.append_run(_record(), tmp_path)
        assert len(ledger.load_ledger(tmp_path)) == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = ledger.ledger_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n" + json.dumps(_record()) + "\n\n")
        assert len(ledger.load_ledger(path)) == 1


# ---------------------------------------------------------------------------
# Hardened ingestion (pinned: every failure names path:lineno)
# ---------------------------------------------------------------------------
class TestIngestionHardening:
    def _write(self, tmp_path, *lines: str):
        path = ledger.ledger_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_corrupt_json_names_the_line(self, tmp_path):
        path = self._write(tmp_path, json.dumps(_record()), "{broken")
        with pytest.raises(ValueError, match=r":2: not valid JSON"):
            ledger.load_ledger(path)

    def test_truncated_line_names_the_line(self, tmp_path):
        good = json.dumps(_record())
        path = self._write(tmp_path, good, good[: len(good) // 2])
        with pytest.raises(ValueError, match=r":2:"):
            ledger.load_ledger(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = self._write(tmp_path, "[1, 2, 3]")
        with pytest.raises(ValueError, match=r":1:.*not a JSON object"):
            ledger.load_ledger(path)

    def test_missing_required_keys_listed(self, tmp_path):
        record = _record()
        del record["run_id"], record["command"]
        path = self._write(tmp_path, json.dumps(record))
        with pytest.raises(ValueError, match=r":1:.*missing run_id, command"):
            ledger.load_ledger(path)

    def test_invalid_schema_version_rejected(self, tmp_path):
        path = self._write(tmp_path, json.dumps(_record(schema="one")))
        with pytest.raises(ValueError, match=r":1: invalid schema version"):
            ledger.load_ledger(path)

    def test_newer_schema_reported_as_skew(self, tmp_path):
        future = _record(schema=ledger.SCHEMA_VERSION + 1)
        path = self._write(tmp_path, json.dumps(future))
        with pytest.raises(ValueError, match=r":1:.*newer than this code"):
            ledger.load_ledger(path)

    def test_good_records_before_the_bad_line_not_returned(self, tmp_path):
        # Fail loudly, never silently shorten: a partially readable
        # ledger raises instead of returning a truncated history.
        path = self._write(tmp_path, json.dumps(_record()), "nope")
        with pytest.raises(ValueError):
            ledger.load_ledger(path)


class TestResolveRun:
    def _records(self):
        return [_record(run_id=rid) for rid in ("aa11", "aa22", "bb33")]

    def test_negative_index(self):
        records = self._records()
        assert ledger.resolve_run(records, "-1")["run_id"] == "bb33"
        assert ledger.resolve_run(records, "-3")["run_id"] == "aa11"

    def test_exact_and_prefix_match(self):
        records = self._records()
        assert ledger.resolve_run(records, "aa22")["run_id"] == "aa22"
        assert ledger.resolve_run(records, "bb")["run_id"] == "bb33"

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.resolve_run(self._records(), "aa")

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError, match="no run matching"):
            ledger.resolve_run(self._records(), "zz")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            ledger.resolve_run(self._records(), "-9")

    def test_empty_ledger_rejected(self):
        with pytest.raises(ValueError, match="no runs"):
            ledger.resolve_run([], "-1")


# ---------------------------------------------------------------------------
# Recorder semantics
# ---------------------------------------------------------------------------
class TestRunRecorder:
    def test_block_rows_merge_dicts_and_derive_gaps(self):
        rec = ledger.RunRecorder("table1")
        rec.record_block("sb0", "GP2", ops=5, bounds={"CP": 8.0}, tightest=10.0)
        rec.record_block("sb0", "GP2", wct={"balance": 10.5}, bounds={"LC": 9.0})
        record = rec.finalize()
        (row,) = record["blocks"]
        assert row["ops"] == 5
        assert row["bounds"] == {"CP": 8.0, "LC": 9.0}
        assert row["wct"] == {"balance": 10.5}
        assert row["gaps"]["CP"] == pytest.approx(20.0)

    def test_none_fields_skipped_and_machines_distinct(self):
        rec = ledger.RunRecorder("bounds")
        rec.record_block("sb0", "GP2", tightest=None, ops=3)
        rec.record_block("sb0", "FS4", ops=4)
        record = rec.finalize()
        rows = {(r["sb"], r["machine"]): r for r in record["blocks"]}
        assert set(rows) == {("sb0", "GP2"), ("sb0", "FS4")}
        assert "tightest" not in rows[("sb0", "GP2")]

    def test_unit_cache_counts(self):
        rec = ledger.RunRecorder("table1")
        rec.record_block("sb0", "GP2", ops=1)
        rec.record_unit_cache("sb0", "GP2", hit=True)
        rec.record_unit_cache("sb0", "GP2", hit=True)
        rec.record_unit_cache("sb0", "GP2", hit=False)
        (row,) = rec.finalize()["blocks"]
        assert (row["cache_hits"], row["cache_misses"]) == (2, 1)

    def test_finalize_appends_when_directory_set(self, tmp_path):
        rec = ledger.RunRecorder("report", argv=["report"], directory=tmp_path)
        record = rec.finalize()
        assert rec.written_path == ledger.ledger_path(tmp_path)
        loaded = ledger.load_ledger(tmp_path)
        assert loaded[-1]["run_id"] == rec.run_id
        for key in ledger.REQUIRED_KEYS:
            assert key in record

    def test_solve_seconds_attributed_from_spans(self):
        # eval.* spans count; bounds.* spans nested under eval.* do not
        # (the suite runs inside eval.bounds — counting both doubles it).
        events = [
            {"event": "span", "id": 0, "name": "eval.bounds", "t0": 0.0,
             "dur": 2.0, "depth": 0, "attrs": {"sb": "sb0", "machine": "GP2"}},
            {"event": "span", "id": 1, "name": "bounds.pairwise", "t0": 0.1,
             "dur": 1.5, "depth": 1, "parent": 0,
             "attrs": {"sb": "sb0", "machine": "GP2"}},
            {"event": "span", "id": 2, "name": "bounds.cp", "t0": 3.0,
             "dur": 0.25, "depth": 0,
             "attrs": {"sb": "sb1", "machine": "GP2"}},
        ]
        rec = ledger.RunRecorder("table1")
        rec.record_block("sb0", "GP2", ops=1)
        rec.record_block("sb1", "GP2", ops=1)
        record = rec.finalize(span_events=events)
        rows = {r["sb"]: r for r in record["blocks"]}
        assert rows["sb0"]["solve_s"] == pytest.approx(2.0)  # not 3.5
        assert rows["sb1"]["solve_s"] == pytest.approx(0.25)
        paths = {entry["path"] for entry in record["span_paths"]}
        assert "eval.bounds;bounds.pairwise" in paths

    def test_installed_stack_nests(self):
        assert ledger.active_recorder() is None
        outer, inner = ledger.RunRecorder("a"), ledger.RunRecorder("b")
        with ledger.installed(outer):
            assert ledger.active_recorder() is outer
            with ledger.installed(inner):
                assert ledger.active_recorder() is inner
            assert ledger.active_recorder() is outer
        assert ledger.active_recorder() is None

    def test_block_gap_prefers_wct_over_bound_spread(self):
        assert ledger.block_gap(
            {"tightest": 10.0, "wct": {"cp": 11.0, "balance": 10.5}}
        ) == pytest.approx(5.0)
        assert ledger.block_gap(
            {"gaps": {"CP": 12.0, "LC": 3.0}}
        ) == pytest.approx(12.0)
        assert ledger.block_gap({}) is None


# ---------------------------------------------------------------------------
# CLI integration: bit-identity, record contents, cache attribution
# ---------------------------------------------------------------------------
TABLE_ARGS = [
    "table3", "--scale", "8", "--max-ops", "20",
    "--machines", "GP2", "--no-triplewise",
]


def _non_ledger_lines(out: str) -> list[str]:
    # drop the ledger line and the metrics path (the file names differ)
    return [
        l for l in out.splitlines()
        if not l.startswith(("ledger:", "metrics written to"))
    ]


class TestCliLedger:
    def test_results_and_counters_identical_with_ledger_on(
        self, tmp_path, capsys
    ):
        """Acceptance: a run with the ledger enabled is bit-identical —
        same table, same counters — to one without."""
        plain_metrics = tmp_path / "plain.json"
        ledger_metrics = tmp_path / "led.json"
        assert main(TABLE_ARGS + ["--metrics-out", str(plain_metrics)]) == 0
        plain_out = capsys.readouterr().out
        assert main(TABLE_ARGS + [
            "--metrics-out", str(ledger_metrics),
            "--ledger", str(tmp_path / "ledger"),
        ]) == 0
        led_out = capsys.readouterr().out
        assert "ledger: run" in led_out
        assert _non_ledger_lines(led_out) == _non_ledger_lines(plain_out)
        c_plain = json.loads(plain_metrics.read_text())["counters"]
        c_led = json.loads(ledger_metrics.read_text())["counters"]
        assert c_plain and c_led == c_plain

    def test_table_record_contents(self, tmp_path, capsys):
        ldir = tmp_path / "ledger"
        assert main(TABLE_ARGS + ["--ledger", str(ldir)]) == 0
        (record,) = ledger.load_ledger(ldir)
        assert record["schema"] == ledger.SCHEMA_VERSION
        assert record["command"] == "table3"
        assert record["wall_seconds"] > 0
        assert record["args"]["scale"] == 8
        blocks = record["blocks"]
        assert blocks
        row = max(blocks, key=lambda r: r["ops"])
        assert row["machine"] == "GP2"
        assert row["ops"] > 0 and row["edges"] > 0
        assert row["tightest"] > 0
        assert set(row["bounds"]) >= {"CP", "LC"}
        assert set(row["gaps"]) == set(row["bounds"])
        assert row["wct"] and row["makespan"]
        # spans ride along, so per-path attribution is available
        assert record["spans"]["wall_s"] > 0
        assert any(
            "eval." in p["path"] for p in record["span_paths"]
        )

    def test_schedule_record_has_wct_makespan_solve(
        self, sb_file, tmp_path, capsys
    ):
        ldir = tmp_path / "ledger"
        assert main([
            "schedule", sb_file, "--heuristic", "balance",
            "--ledger", str(ldir),
        ]) == 0
        (record,) = ledger.load_ledger(ldir)
        (row,) = record["blocks"]
        assert row["sb"] == "figure2"
        assert "balance" in row["wct"] and "balance" in row["makespan"]
        assert row["solve_s"] >= 0

    def test_env_var_enables_and_no_ledger_disables(
        self, sb_file, tmp_path, capsys, monkeypatch
    ):
        ldir = tmp_path / "ledger"
        monkeypatch.setenv(ledger.LEDGER_ENV, str(ldir))
        assert main(["bounds", sb_file, "--no-ledger"]) == 0
        assert not ledger.ledger_path(ldir).exists()
        assert main(["bounds", sb_file]) == 0
        assert len(ledger.load_ledger(ldir)) == 1

    def test_failed_run_appends_nothing(self, tmp_path, capsys):
        ldir = tmp_path / "ledger"
        with pytest.raises(FileNotFoundError):
            main([
                "bounds", str(tmp_path / "missing.json"),
                "--ledger", str(ldir),
            ])
        assert not ledger.ledger_path(ldir).exists()

    def test_warm_run_attributes_unit_cache_hits(self, tmp_path, capsys):
        cache_dir, ldir = tmp_path / "cache", tmp_path / "ledger"
        base = TABLE_ARGS + ["--cache-dir", str(cache_dir)]
        assert main(base) == 0  # cold: populate the cache
        assert main(base + ["--ledger", str(ldir)]) == 0  # warm: all hits
        (record,) = ledger.load_ledger(ldir)
        assert record["cache"]["hit_rate"] > 0.9
        hits = sum(r.get("cache_hits", 0) for r in record["blocks"])
        misses = sum(r.get("cache_misses", 0) for r in record["blocks"])
        assert hits > 0 and misses == 0


# ---------------------------------------------------------------------------
# Overhead gate (the PR 2 no-op tracer gate, for the ledger)
# ---------------------------------------------------------------------------
def _timed(fn) -> float:
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def test_ledger_overhead_under_five_percent():
    """An installed recorder adds <5% to a quick Table 1-style sweep.

    The recorder only collects rows the eval layer pushes — no metrics
    activation, no span bookkeeping of its own — so a full corpus
    evaluation with the ledger on must stay within noise of one without.
    Interleaved best-of-7 CPU-time samples, as in the no-op span gate.
    """
    corpus = list(specint95_corpus(scale=8, seed=5, max_ops=28))
    assert ledger.active_recorder() is None

    def plain() -> None:
        evaluate_corpus(corpus, FS4, include_triplewise=False)

    def recorded() -> None:
        with ledger.installed(ledger.RunRecorder("bench-overhead")):
            evaluate_corpus(corpus, FS4, include_triplewise=False)

    # Pin the python kernel: the ratio contract is about the recorder,
    # and the numpy backend shrinks the eval denominator enough that the
    # ledger's fixed per-row cost can breach 5% on a noisy host.
    plain()  # warm caches before timing
    recorded()
    baseline = with_ledger = float("inf")
    with forced_kernel("python"):
        for _ in range(7):
            baseline = min(baseline, _timed(plain))
            with_ledger = min(with_ledger, _timed(recorded))
    assert with_ledger <= baseline * 1.05, (
        f"ledger overhead {100 * (with_ledger / baseline - 1):.2f}% "
        f"exceeds 5% ({with_ledger:.4f}s vs {baseline:.4f}s)"
    )


# ---------------------------------------------------------------------------
# Slow-request exemplars (service tail latency)
# ---------------------------------------------------------------------------
def _serve_record(run_id: str, elapsed_ms: float | None, **exemplar_extra):
    record = _record(run_id, command="serve", wall_seconds=1.0)
    if elapsed_ms is not None:
        exemplar = {
            "request_id": f"rid-{run_id}",
            "status": 200,
            "kind": "schedule",
            "machine": "GP2",
            "blocks": 2,
            "elapsed_ms": elapsed_ms,
            "threshold_ms": 0.0,
            "phases_ms": {
                "parse": 0.1, "queue": 0.0, "eval": elapsed_ms - 1.0,
                "serialize": 0.2,
            },
        }
        exemplar.update(exemplar_extra)
        record["extra"] = {"slow_request": exemplar}
    return record


class TestSlowExemplars:
    def test_sorted_slowest_first_and_paired_with_record(self):
        records = [
            _serve_record("a", 10.0),
            _serve_record("b", None),  # untagged serve record: skipped
            _serve_record("c", 250.0),
            _record("d"),  # non-serve record without extra: skipped
        ]
        entries = ledger.slow_exemplars(records)
        assert [e["exemplar"]["request_id"] for e in entries] == [
            "rid-c", "rid-a",
        ]
        assert entries[0]["record"]["run_id"] == "c"

    def test_render_slowest_table(self):
        records = [
            _serve_record("a", 10.0),
            _serve_record("c", 250.0, trace={"traceEvents": []}),
        ]
        out = ledger.render_slowest(records)
        lines = out.splitlines()
        assert "2 slow-request exemplar(s)" in lines[0]
        # Slowest first; the traced exemplar says so.
        assert lines.index(
            next(li for li in lines if "rid-c" in li)
        ) < lines.index(next(li for li in lines if "rid-a" in li))
        assert "yes" in next(li for li in lines if "rid-c" in li)

    def test_render_slowest_empty_and_overflow(self):
        assert "no slow-request exemplars" in ledger.render_slowest([])
        records = [
            _serve_record(f"r{i}", float(i + 1)) for i in range(12)
        ]
        out = ledger.render_slowest(records, top=10)
        assert "... and 2 more" in out
