"""Unit tests for the Pairwise bound (Theorem 2 / Figure 5)."""

import pytest

from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.bounds.pairwise import PairwiseBounder
from repro.ir.examples import figure1, figure4
from repro.machine.machine import GP2
from repro.schedulers.base import get_scheduler
from repro.eval.metrics import reweighted


def make_bounder(sb, machine, counters=None):
    rc = early_rc(sb.graph, machine)
    late = {
        b: late_rc_for_branch(sb.graph, machine, b, rc[b])
        for b in sb.branches
    }
    return PairwiseBounder(
        sb.graph, machine, rc, late, sb.branch_latency, counters
    ), rc


class TestPairBound:
    def test_conflict_free_pair(self):
        """Figure 1: both exits can reach their individual bounds."""
        sb = figure1()
        bounder, rc = make_bounder(sb, GP2)
        pb = bounder.pair_bound(3, 16, 0.25, 0.75)
        assert pb.conflict_free
        assert (pb.x, pb.y) == (rc[3], rc[16]) == (2, 8)

    def test_conflicting_pair_curve(self):
        """Figure 4: the tradeoff curve spans multiple regimes."""
        sb = figure4()
        bounder, rc = make_bounder(sb, GP2)
        pb = bounder.pair_bound(6, 18, 0.3, 0.7)
        assert not pb.conflict_free
        assert len(pb.curve) >= 2
        # Curve extremes: y floor = EarlyRC[final], x floor = EarlyRC[side].
        assert min(p.y for p in pb.curve) >= rc[18]
        assert min(p.x for p in pb.curve) >= rc[6]

    def test_best_point_tracks_weights(self):
        """Figure 4: the minimizing point flips across P = 0.5."""
        sb = figure4()
        bounder, _rc = make_bounder(sb, GP2)
        low = bounder.pair_bound(6, 18, 0.2, 0.8)
        high = bounder.pair_bound(6, 18, 0.8, 0.2)
        assert low.y < high.y   # light side exit: keep the final exit early
        assert high.x < low.x   # heavy side exit: keep the side exit early

    def test_best_for_weights_matches_reported_best(self):
        sb = figure4()
        bounder, _rc = make_bounder(sb, GP2)
        pb = bounder.pair_bound(6, 18, 0.3, 0.7)
        pt = pb.best_for_weights(0.3, 0.7)
        assert (pt.x, pt.y) == (pb.x, pb.y)

    def test_non_ancestor_pair_rejected(self):
        sb = figure1()
        bounder, _rc = make_bounder(sb, GP2)
        with pytest.raises(ValueError, match="ancestor"):
            bounder.pair_bound(16, 3, 0.5, 0.5)

    def test_counters_record_latency_trials(self):
        counters = Counters()
        sb = figure4()
        bounder, _rc = make_bounder(sb, GP2, counters)
        bounder.pair_bound(6, 18, 0.3, 0.7)
        assert counters.get("pw.latency_trials") >= 2

    def test_pair_cost_helper(self):
        sb = figure1()
        bounder, _rc = make_bounder(sb, GP2)
        pb = bounder.pair_bound(3, 16, 0.25, 0.75)
        assert pb.cost(0.25, 0.75) == pytest.approx(0.25 * 2 + 0.75 * 8)

    def test_equal_cost_plateau_breaks_to_smallest_separation(self):
        """Both selection sites share one tie-break: on an equal-cost
        plateau the smallest separation wins, leaving the schedule the
        most freedom."""
        from repro.bounds.pairwise import TradeoffPoint, best_tradeoff_point

        curve = (
            TradeoffPoint(separation=1, x=4, y=5),
            TradeoffPoint(separation=2, x=3, y=5),  # cost ties with below
            TradeoffPoint(separation=3, x=2, y=6),  # 1*2 + 1*6 == 3 + 5
        )
        best = best_tradeoff_point(curve, 1.0, 1.0)
        assert best.separation == 2
        # And the reported pair-bound best agrees with the helper on a
        # real curve, for arbitrary weights.
        sb = figure4()
        bounder, _rc = make_bounder(sb, GP2)
        pb = bounder.pair_bound(6, 18, 0.5, 0.5)
        assert pb.best_for_weights(0.5, 0.5) == best_tradeoff_point(
            pb.curve, 0.5, 0.5
        )


class TestPairBoundSoundness:
    """Every curve point must under-bound the corresponding optimal."""

    @pytest.mark.parametrize("prob", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_pair_bound_below_optimal(self, prob):
        sb = reweighted(
            figure4(), {6: prob, 18: 1.0 - prob}
        )
        bounder, _rc = make_bounder(sb, GP2)
        pb = bounder.pair_bound(6, 18, prob, 1 - prob)
        optimal = get_scheduler("optimal")(sb, GP2, budget=500_000)
        cost_opt = prob * optimal.issue[6] + (1 - prob) * optimal.issue[18]
        assert pb.cost(prob, 1 - prob) <= cost_opt + 1e-9

    def test_pair_bound_below_optimal_on_corpus(self, tiny_corpus):
        from repro.schedulers.optimal import SearchBudgetExceeded

        checked = 0
        for sb in tiny_corpus:
            if sb.num_operations > 12 or sb.num_branches < 2:
                continue
            try:
                optimal = get_scheduler("optimal")(sb, GP2, budget=200_000)
            except SearchBudgetExceeded:
                continue
            bounder, _rc = make_bounder(sb, GP2)
            weights = sb.weights
            for i, j in zip(sb.branches, sb.branches[1:]):
                pb = bounder.pair_bound(i, j, weights[i], weights[j])
                actual = (
                    weights[i] * optimal.issue[i]
                    + weights[j] * optimal.issue[j]
                )
                # The pair bound may not exceed the *pair-optimal* cost,
                # which is itself <= the cost within the overall optimum.
                assert pb.cost(weights[i], weights[j]) <= actual + 1e-9
                checked += 1
        assert checked > 0
