"""Property-based tests (hypothesis) over random superblocks.

Core invariants:

* every scheduler produces a feasible schedule;
* no scheduler's WCT falls below the tightest lower bound;
* the bound dominance chain holds on arbitrary graphs;
* serialization round-trips exactly;
* generated corpora are deterministic in their seed.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds.superblock_bounds import BoundSuite
from repro.eval.metrics import reweighted
from repro.ir.builder import SuperblockBuilder
from repro.ir.serialize import dumps, loads
from repro.machine.machine import FS4, GP1, GP2, GP4
from repro.schedulers.base import get_scheduler
from repro.schedulers.schedule import validate_schedule

MACHINES = [GP1, GP2, GP4, FS4]
OPCODES = ["add", "sub", "load", "store", "mul", "fadd"]


@st.composite
def superblocks(draw, max_ops: int = 16, max_branches: int = 4):
    """Random valid superblock."""
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    n_branches = draw(st.integers(1, max_branches))
    builder = SuperblockBuilder("hyp")
    pending: list[int] = []
    remaining_prob = 1.0
    for blk in range(n_branches):
        block_len = draw(st.integers(0, max(1, max_ops // n_branches)))
        block_ops = []
        for _ in range(block_len):
            pool = pending + block_ops
            preds = rng.sample(pool, k=min(len(pool), rng.randint(0, 2)))
            builder.op(rng.choice(OPCODES), preds=preds)
            block_ops.append(builder.next_index - 1)
        pending.extend(block_ops)
        if blk == n_branches - 1:
            sinks = [v for v in pending if not builder._graph.succs(v)]
            return builder.last_exit(preds=sinks)
        k = min(len(block_ops), rng.randint(0, 3))
        preds = rng.sample(block_ops, k=k) if k else None
        p = round(remaining_prob * rng.uniform(0.05, 0.5), 6)
        remaining_prob -= p
        builder.exit(p, preds=preds)
    raise AssertionError("unreachable")


common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(sb=superblocks(), machine_idx=st.integers(0, len(MACHINES) - 1),
       name=st.sampled_from(["cp", "sr", "gstar", "dhasy", "help", "balance"]))
@common_settings
def test_schedulers_produce_feasible_schedules(sb, machine_idx, name):
    machine = MACHINES[machine_idx]
    s = get_scheduler(name)(sb, machine, validate=False)
    validate_schedule(sb, machine, s)


@given(sb=superblocks(), machine_idx=st.integers(0, len(MACHINES) - 1))
@common_settings
def test_no_schedule_beats_tightest_bound(sb, machine_idx):
    machine = MACHINES[machine_idx]
    suite = BoundSuite(sb, machine)
    bound = suite.compute().tightest
    for name in ("cp", "sr", "dhasy", "help", "balance", "best"):
        s = get_scheduler(name)(sb, machine, validate=False)
        assert s.wct >= bound - 1e-9, (sb.name, name, s.wct, bound)


@given(sb=superblocks(), machine_idx=st.integers(0, len(MACHINES) - 1))
@common_settings
def test_bound_dominance_chain(sb, machine_idx):
    machine = MACHINES[machine_idx]
    res = BoundSuite(sb, machine).compute()
    assert res.wct["CP"] <= res.wct["Hu"] + 1e-9
    assert res.wct["CP"] <= res.wct["RJ"] + 1e-9
    assert res.wct["RJ"] <= res.wct["LC"] + 1e-9
    assert res.wct["LC"] <= res.wct["PW"] + 1e-9
    assert res.wct["PW"] <= res.wct["TW"] + 1e-9


@given(sb=superblocks())
@common_settings
def test_serialization_round_trip(sb):
    sb2 = loads(dumps(sb))
    assert sb2.name == sb.name
    assert sorted(sb2.graph.edges()) == sorted(sb.graph.edges())
    assert [op.opcode.name for op in sb2.operations] == [
        op.opcode.name for op in sb.operations
    ]
    assert sb2.weights == sb.weights


@given(sb=superblocks(max_ops=10, max_branches=3))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_optimal_dominates_heuristics_and_bound(sb):
    from repro.schedulers.optimal import SearchBudgetExceeded

    try:
        opt = get_scheduler("optimal")(sb, GP2, budget=150_000)
    except SearchBudgetExceeded:
        return
    bound = BoundSuite(sb, GP2).compute().tightest
    assert opt.wct >= bound - 1e-9
    for name in ("cp", "sr", "balance"):
        s = get_scheduler(name)(sb, GP2, validate=False)
        assert opt.wct <= s.wct + 1e-9


@given(sb=superblocks(), factor=st.floats(0.1, 10.0))
@common_settings
def test_reweighting_preserves_structure(sb, factor):
    weights = {b: factor * (i + 1) for i, b in enumerate(sb.branches)}
    sb2 = reweighted(sb, weights)
    assert sorted(sb2.graph.edges()) == sorted(sb.graph.edges())
    assert abs(sum(sb2.weights.values()) - 1.0) < 1e-9


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_generator_determinism(seed):
    from repro.workloads.generator import generate_superblock
    from repro.workloads.profiles import profile_by_name

    p = profile_by_name("perl")
    a = generate_superblock(p, 0, seed=seed)
    b = generate_superblock(p, 0, seed=seed)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.exec_freq == b.exec_freq
