"""Backend selection and python/numpy kernel parity.

The array kernels (repro.kernels.rj_numpy, repro.kernels.pairwise_numpy)
must be bit-identical to the pure-python reference — bounds, max_miss,
placements, and trip counters. The fuzz-scale pin lives in the ``kernel``
verify family; these tests pin the selection machinery and the
adversarial shapes (multi-occupancy ops, single-unit classes, a moving
``est_j`` mid-sweep) on focused cases.
"""

import itertools

import pytest

from repro import kernels
from repro.bounds.branch_rj import branch_problem, rj_branch_bound, rj_branch_bounds
from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.bounds.pairwise import PairwiseBounder
from repro.bounds.rim_jain import solve_relaxation
from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import FS4_NP, GP1, GP2, MachineConfig
from repro.verify.generators import fuzz_cases

needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not installed"
)

#: A 1-wide machine where every opcode blocks its unit for several
#: cycles — the adversarial occupancy shape (GP1 adds single-unit
#: classes, FS4_NP mixes pipelined and blocking opcodes).
GP1_BLOCKING = MachineConfig(
    name="GP1-blk",
    units=dict(GP1.units),
    class_map=dict(GP1.class_map),
    occupancy={"fdiv": 9, "fmul": 3, "load": 2},
)


class TestBackendSelection:
    def test_invalid_value_rejected(self):
        with kernels.forced("frobnicate"):
            with pytest.raises(ValueError, match="REPRO_KERNEL"):
                kernels.backend()

    def test_python_forced(self):
        with kernels.forced("python"):
            assert kernels.backend() == "python"
            assert not kernels.use_numpy()

    def test_selection_is_dynamic(self):
        with kernels.forced("python"):
            assert kernels.backend() == "python"
        with kernels.forced("auto"):
            assert kernels.backend() in ("python", "numpy")

    def test_numpy_forced_without_numpy_errors(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_probe", False)
        monkeypatch.setattr(kernels, "_resolved", None)
        with kernels.forced("numpy"):
            with pytest.raises(RuntimeError, match="not importable"):
                kernels.backend()

    def test_auto_falls_back_to_python(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_probe", False)
        monkeypatch.setattr(kernels, "_resolved", None)
        with kernels.forced("auto"):
            assert kernels.backend() == "python"

    @needs_numpy
    def test_auto_prefers_numpy(self):
        with kernels.forced("auto"):
            assert kernels.backend() == "numpy"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        monkeypatch.setattr(kernels, "_resolved", None)
        assert kernels.backend() in ("python", "numpy")


def _blocking_case():
    """Heavy multi-occupancy pressure feeding one sink."""
    b = SuperblockBuilder("blocking")
    for _ in range(4):
        b.op("fdiv")
    for _ in range(4):
        b.op("fmul")
    for _ in range(4):
        b.op("load")
    b.op("add", preds=[0, 4, 8])
    return b.last_exit(preds=list(range(13)))


@needs_numpy
class TestRJParity:
    MACHINES = (GP1, GP2, FS4_NP, GP1_BLOCKING)

    def _assert_parity(self, sb, machine):
        with kernels.forced("python"):
            c_py = Counters()
            ref = rj_branch_bounds(sb, machine, c_py)
        with kernels.forced("numpy"):
            c_np = Counters()
            got = rj_branch_bounds(sb, machine, c_np)
        assert got == ref, (sb.name, machine.name)
        assert c_np.as_dict() == c_py.as_dict(), (sb.name, machine.name)

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_blocking_shapes(self, machine):
        self._assert_parity(_blocking_case(), machine)

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_corpus_parity(self, machine, tiny_corpus):
        for sb in tiny_corpus:
            self._assert_parity(sb, machine)

    def test_fuzz_parity_including_blocking_machines(self):
        for case in fuzz_cases(40, seed=7):
            self._assert_parity(case.sb, case.machine)

    def test_single_branch_entry_point(self):
        sb = _blocking_case()
        for machine in self.MACHINES:
            for b in sb.branches:
                with kernels.forced("python"):
                    ref = rj_branch_bound(sb, machine, b)
                with kernels.forced("numpy"):
                    assert rj_branch_bound(sb, machine, b) == ref

    def test_full_solve_matches_reference_placements(self):
        """max_miss AND per-op placements, under multi-occupancy."""
        from repro.kernels import rj_numpy

        for machine in self.MACHINES:
            for case in fuzz_cases(20, seed=11):
                sb = case.sb
                for b in sb.branches:
                    full = rj_numpy.solve_full(sb, machine, b)
                    if full is None:
                        continue  # context fell back to python
                    nodes, early, late, _est, rclass, occ = branch_problem(
                        sb, machine, b
                    )
                    ref = solve_relaxation(
                        nodes, early, late, rclass, machine, occupancy=occ
                    )
                    assert full == ref, (sb.name, machine.name, b)


def _pairwise_results(sb, machine, backend):
    rc = early_rc(sb.graph, machine)
    late = {
        b: late_rc_for_branch(sb.graph, machine, b, rc[b])
        for b in sb.branches
    }
    with kernels.forced(backend):
        counters = Counters()
        bounder = PairwiseBounder(
            sb.graph, machine, rc, late, sb.branch_latency, counters
        )
        bounds = [
            bounder.pair_bound(i, j, 1.0, 2.0)
            for i, j in itertools.combinations(sb.branches, 2)
        ]
    return bounds, counters.as_dict()


@needs_numpy
class TestPairwiseParity:
    @pytest.fixture(autouse=True)
    def _force_engines(self, monkeypatch):
        """Zero the perf size gates so small cases exercise the engine."""
        from repro.kernels import pairwise_numpy

        monkeypatch.setattr(pairwise_numpy, "_MIN_PIECES", 0)
        monkeypatch.setattr(pairwise_numpy, "_MIN_CELLS", 0)

    @pytest.mark.parametrize(
        "machine", (GP2, FS4_NP, GP1_BLOCKING), ids=lambda m: m.name
    )
    def test_corpus_pair_bounds_identical(self, machine, tiny_corpus):
        for sb in tiny_corpus:
            if len(sb.branches) < 2:
                continue
            ref = _pairwise_results(sb, machine, "python")
            got = _pairwise_results(sb, machine, "numpy")
            assert got == ref, (sb.name, machine.name)

    def test_fuzz_pair_bounds_identical(self):
        """Multi-branch fuzz cases move est_j mid-sweep (the warm-start
        rebuild in the python path); the engine must track it exactly."""
        for case in fuzz_cases(30, seed=3):
            if len(case.sb.branches) < 2:
                continue
            ref = _pairwise_results(case.sb, case.machine, "python")
            got = _pairwise_results(case.sb, case.machine, "numpy")
            assert got == ref, (case.sb.name, case.machine.name)
