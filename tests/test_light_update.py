"""Tests for the Balance scheduler's light (incremental) update path."""

import pytest

from repro.bounds.instrumentation import Counters
from repro.core.balance import balance_schedule
from repro.core.config import BalanceConfig
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.machine.machine import FS4, GP1, GP2
from repro.schedulers.schedule import validate_schedule

LIGHT = BalanceConfig(light_update=True)
FULL = BalanceConfig(light_update=False)


class TestLightUpdate:
    def test_identical_on_paper_examples(self):
        for sb in (figure1(), figure2(), figure3(), figure4(0.3), figure4(0.7)):
            a = balance_schedule(sb, GP2, LIGHT)
            b = balance_schedule(sb, GP2, FULL)
            assert a.issue == b.issue, sb.name

    def test_schedules_valid_everywhere(self, tiny_corpus, any_machine):
        for sb in tiny_corpus.superblocks[:5]:
            s = balance_schedule(sb, any_machine, LIGHT)
            validate_schedule(sb, any_machine, s)

    def test_near_equivalence_on_corpus(self, small_corpus):
        """The light path may diverge only on transient delay melts; it
        must produce identical schedules for almost every superblock and
        an essentially identical aggregate WCT."""
        mismatches = 0
        wct_light = wct_full = 0.0
        runs = 0
        for sb in small_corpus:
            for machine in (GP1, FS4):
                a = balance_schedule(sb, machine, LIGHT, validate=False)
                b = balance_schedule(sb, machine, FULL, validate=False)
                runs += 1
                wct_light += a.wct
                wct_full += b.wct
                if a.issue != b.issue:
                    mismatches += 1
        assert mismatches <= max(1, runs // 25)
        assert wct_light == pytest.approx(wct_full, rel=2e-3)

    def test_light_path_actually_taken(self):
        counters = Counters()
        sb = figure1()
        balance_schedule(sb, GP2, LIGHT, counters=counters, validate=False)
        assert counters.get("balance.light_branch") > 0

    def test_full_mode_never_uses_light(self):
        counters = Counters()
        sb = figure1()
        balance_schedule(sb, GP2, FULL, counters=counters, validate=False)
        assert counters.get("balance.light_branch") == 0

    def test_light_reduces_work(self, tiny_corpus):
        """The light path performs fewer early/late graph visits."""
        c_light, c_full = Counters(), Counters()
        for sb in tiny_corpus.superblocks[:8]:
            balance_schedule(sb, FS4, LIGHT, counters=c_light, validate=False)
            balance_schedule(sb, FS4, FULL, counters=c_full, validate=False)
        visits_light = c_light.get("balance.early_visit") + c_light.get(
            "balance.late_visit"
        )
        visits_full = c_full.get("balance.early_visit") + c_full.get(
            "balance.late_visit"
        )
        assert visits_light < visits_full

    def test_fallback_on_infeasible_erc(self, small_corpus):
        """Somewhere in the corpus an ERC turns infeasible mid-cycle and
        the light path must fall back to the full recomputation."""
        counters = Counters()
        for sb in small_corpus:
            balance_schedule(sb, FS4, LIGHT, counters=counters, validate=False)
        assert counters.get("balance.light_fallback") > 0

    def test_width_one_machine_never_needs_light(self, tiny_corpus):
        """On GP1 every decision opens a new cycle, so the light path is
        never exercised (and nothing breaks)."""
        counters = Counters()
        for sb in tiny_corpus.superblocks[:6]:
            balance_schedule(sb, GP1, LIGHT, counters=counters, validate=False)
        assert counters.get("balance.light_branch") == 0
