"""Tests for the LP combination of bound inequalities."""

import pytest

from repro.bounds.lp_combine import solve_lp_bound
from repro.bounds.pairwise import PairBound, TradeoffPoint
from repro.bounds.superblock_bounds import BoundSuite
from repro.bounds.triplewise import TripleBound
from repro.ir.builder import SuperblockBuilder
from repro.ir.examples import figure4
from repro.machine.machine import GP1, GP2


def three_branch_sb():
    return (
        SuperblockBuilder("lp3")
        .op("add")
        .exit(0.3, preds=[0])
        .op("add")
        .exit(0.3, preds=[2])
        .op("add")
        .last_exit(preds=[4])
    )


def pair(i, j, x, y):
    return PairBound(
        i=i, j=j, x=x, y=y,
        curve=(TradeoffPoint(1, x, y),),
        conflict_free=False,
    )


class TestSolveLpBound:
    def test_no_inequalities_gives_naive(self):
        sb = three_branch_sb()
        rc = [0] * sb.num_operations
        naive = solve_lp_bound(sb, rc, {}, {})
        expected = sum(w * (0 + 1) for w in sb.weights.values())
        assert naive == pytest.approx(expected)

    def test_pair_inequality_tightens(self):
        sb = three_branch_sb()
        b1, b2, b3 = sb.branches
        rc = [0] * sb.num_operations
        # Claim: the weighted pair (b1, b2) cannot finish before cost 5.
        bound = solve_lp_bound(sb, rc, {(b1, b2): pair(b1, b2, 5, 10)}, {})
        naive = solve_lp_bound(sb, rc, {}, {})
        assert bound > naive

    def test_triple_inequality_tightens_further(self):
        sb = three_branch_sb()
        b1, b2, b3 = sb.branches
        rc = [0] * sb.num_operations
        tb = TripleBound(i=b1, j=b2, k=b3, x=2, y=4, z=6, evaluated=1)
        with_triple = solve_lp_bound(sb, rc, {}, {(b1, b2, b3): tb})
        assert with_triple > solve_lp_bound(sb, rc, {}, {})

    def test_lp_dominates_theorem3_average(self, tiny_corpus):
        """The LP includes the averaging as one dual-feasible point."""
        for sb in tiny_corpus:
            if sb.num_branches < 2:
                continue
            for machine in (GP1, GP2):
                suite = BoundSuite(sb, machine, include_triplewise=False)
                if not suite.pairs_complete:
                    continue
                avg = suite.theorem3_average()
                lp = suite.lp_bound(include_triples=False)
                assert lp >= avg - 1e-6, sb.name

    def test_lp_never_exceeds_optimal(self):
        from repro.schedulers.base import schedule

        sb = figure4(0.3)
        suite = BoundSuite(sb, GP2)
        lp = suite.lp_bound(include_triples=True)
        opt = schedule(sb, GP2, "optimal")
        assert lp <= opt.wct + 1e-9

    def test_individual_floors_respected(self):
        sb = three_branch_sb()
        rc = [7] * sb.num_operations
        bound = solve_lp_bound(sb, rc, {}, {})
        # Every branch at >= 7, + branch latency 1.
        assert bound >= 8 - 1e-9
