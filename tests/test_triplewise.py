"""Unit tests for the Triplewise bound."""

import pytest

from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.bounds.triplewise import TriplewiseBounder
from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import GP1, GP2
from repro.schedulers.base import get_scheduler
from repro.schedulers.optimal import SearchBudgetExceeded


def make_bounder(sb, machine, budget=600):
    rc = early_rc(sb.graph, machine)
    late = {
        b: late_rc_for_branch(sb.graph, machine, b, rc[b])
        for b in sb.branches
    }
    return (
        TriplewiseBounder(
            sb.graph, machine, rc, late, sb.branch_latency,
            solve_budget=budget,
        ),
        rc,
    )


def three_exit_sb():
    """Three exits sharing a 1-wide machine's single unit stream."""
    return (
        SuperblockBuilder("three")
        .op("add")
        .op("add")
        .exit(0.3, preds=[0, 1])
        .op("add")
        .exit(0.3, preds=[3])
        .op("add")
        .last_exit(preds=[5])
    )


class TestTripleBound:
    def test_triple_on_narrow_machine_detects_serialization(self):
        sb = three_exit_sb()
        bounder, rc = make_bounder(sb, GP1)
        tb = bounder.triple_bound(2, 4, 6, 0.3, 0.3, 0.4)
        assert tb is not None
        # On GP1 everything serializes: 7 ops, branches at >= 2, >= 4, >= 6.
        assert tb.x >= rc[2]
        assert tb.y >= rc[4]
        assert tb.z >= rc[6]
        assert tb.y > tb.x
        assert tb.z > tb.y

    def test_budget_exhaustion_returns_none(self):
        sb = three_exit_sb()
        bounder, _rc = make_bounder(sb, GP1, budget=1)
        assert bounder.triple_bound(2, 4, 6, 0.3, 0.3, 0.4) is None

    def test_triple_cost_helper(self):
        sb = three_exit_sb()
        bounder, _rc = make_bounder(sb, GP1)
        tb = bounder.triple_bound(2, 4, 6, 0.3, 0.3, 0.4)
        assert tb.cost(0.3, 0.3, 0.4) == pytest.approx(
            0.3 * tb.x + 0.3 * tb.y + 0.4 * tb.z
        )

    def test_triple_bound_sound_vs_optimal(self, tiny_corpus):
        """w_i x + w_j y + w_k z never exceeds the optimal's triple cost."""
        checked = 0
        for sb in tiny_corpus:
            if sb.num_operations > 11 or sb.num_branches < 3:
                continue
            try:
                optimal = get_scheduler("optimal")(sb, GP2, budget=200_000)
            except SearchBudgetExceeded:
                continue
            bounder, _rc = make_bounder(sb, GP2)
            w = sb.weights
            triple = sb.branches[:3]
            i, j, k = triple
            tb = bounder.triple_bound(i, j, k, w[i], w[j], w[k])
            if tb is None:
                continue
            actual = (
                w[i] * optimal.issue[i]
                + w[j] * optimal.issue[j]
                + w[k] * optimal.issue[k]
            )
            assert tb.cost(w[i], w[j], w[k]) <= actual + 1e-9
            checked += 1
        assert checked > 0

    def test_triple_at_least_sum_of_individual_floors(self):
        sb = three_exit_sb()
        bounder, rc = make_bounder(sb, GP2)
        tb = bounder.triple_bound(2, 4, 6, 0.3, 0.3, 0.4)
        assert tb is not None
        floor = 0.3 * rc[2] + 0.3 * rc[4] + 0.4 * rc[6]
        assert tb.cost(0.3, 0.3, 0.4) >= floor - 1e-9


class TestDegenerateTriples:
    def test_unordered_triple_rejected(self):
        sb = three_exit_sb()
        bounder, _rc = make_bounder(sb, GP1)
        with pytest.raises(ValueError, match="program order"):
            bounder.triple_bound(4, 2, 6, 0.3, 0.3, 0.4)
        with pytest.raises(ValueError, match="program order"):
            bounder.triple_bound(2, 2, 6, 0.3, 0.3, 0.4)

    def test_non_ancestor_chain_rejected(self):
        # Ordered indices that are not an exit chain (op 3 is not a
        # branch, so there is no control ancestry through it).
        sb = three_exit_sb()
        bounder, _rc = make_bounder(sb, GP1)
        with pytest.raises(ValueError, match="ancestor"):
            bounder.triple_bound(0, 1, 6, 0.3, 0.3, 0.4)

    def test_duplicate_weight_ties_are_deterministic(self):
        # Equal weights produce cost ties across the covering grid; the
        # tie-break must pick the same (componentwise-largest) point on
        # every run.
        sb = three_exit_sb()
        results = set()
        for _ in range(3):
            bounder, _rc = make_bounder(sb, GP1)
            tb = bounder.triple_bound(2, 4, 6, 1 / 3, 1 / 3, 1 / 3)
            results.add((tb.x, tb.y, tb.z))
        assert len(results) == 1

    def test_zero_weight_component_still_sound(self):
        sb = three_exit_sb()
        bounder, rc = make_bounder(sb, GP1)
        tb = bounder.triple_bound(2, 4, 6, 0.0, 0.5, 0.5)
        assert tb is not None
        assert tb.x >= rc[2] or tb.x == rc[2]
        assert tb.cost(0.0, 0.5, 0.5) >= 0.5 * rc[4] + 0.5 * rc[6] - 1e-9


class TestTwoBranchFallback:
    def test_suite_reports_tw_equal_pw_below_three_exits(self, two_exit_sb):
        from repro.bounds.superblock_bounds import BoundSuite

        res = BoundSuite(two_exit_sb, GP2, include_triplewise=True).compute()
        assert res.wct["TW"] == res.wct["PW"]
        assert res.triple_bounds == {}
        assert res.triples_skipped == 0

    def test_single_exit_falls_all_the_way_back(self, single_exit_sb):
        from repro.bounds.superblock_bounds import BoundSuite

        res = BoundSuite(single_exit_sb, GP2, include_triplewise=True).compute()
        assert res.wct["TW"] == res.wct["PW"]
