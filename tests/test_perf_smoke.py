"""Perf smoke harness: schema, regression gate, and allocator micro-paths.

The full suite runs via ``python -m repro bench`` / ``benchmarks/
run_bench.sh``; here we exercise the quick subset (pytest marker
``perf``) so tier-1 keeps covering the harness without paying full bench
runtimes.
"""

from __future__ import annotations

import json

import pytest

from repro.bounds.rim_jain import SlotAllocator
from repro.perf.bench import (
    HEADLINE_METRICS,
    BenchConfig,
    BenchResult,
    compare_metrics,
    render_metrics,
    run_bench,
    save_metrics,
)


@pytest.fixture(scope="module")
def quick_result() -> BenchResult:
    config = BenchConfig.quick()
    config.include_scaling = False
    return run_bench(config)


@pytest.mark.perf
def test_quick_bench_schema(quick_result, tmp_path_factory):
    """Every metric follows the BENCH JSON schema {value, unit, seed}."""
    assert set(HEADLINE_METRICS) <= set(quick_result.metrics)
    for name, entry in quick_result.metrics.items():
        assert set(entry) == {"value", "unit", "seed"}, name
        assert entry["value"] > 0
        assert entry["seed"] == BenchConfig.quick().seed
    path = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
    save_metrics(quick_result, path)
    saved = json.loads(path.read_text())
    observability = saved.pop("observability")
    assert saved == quick_result.metrics
    # The appended observability block carries the metered Table 1 run.
    assert observability == quick_result.observability
    assert observability["counters"]  # loop trips survived aggregation
    assert "table1_metered" in observability["timers"]
    text = render_metrics(quick_result)
    assert "rj_solves_per_sec" in text


@pytest.mark.perf
def test_quick_bench_self_comparison_passes(quick_result):
    assert compare_metrics(quick_result.metrics, quick_result.metrics) == []


def _metric(value: float, unit: str) -> dict:
    return {"value": value, "unit": unit, "seed": 1999}


def test_compare_metrics_direction_and_tolerance():
    baseline = {
        "rj_solves_per_sec": _metric(1000.0, "solves/s"),
        "table1_seconds": _metric(10.0, "s"),
    }
    # Within 20%: no failures in either direction.
    ok = {
        "rj_solves_per_sec": _metric(850.0, "solves/s"),
        "table1_seconds": _metric(11.5, "s"),
    }
    assert compare_metrics(ok, baseline) == []
    # Throughput drop > 20% fails; elapsed growth > 20% fails.
    bad = {
        "rj_solves_per_sec": _metric(700.0, "solves/s"),
        "table1_seconds": _metric(13.0, "s"),
    }
    failures = compare_metrics(bad, baseline)
    assert len(failures) == 2
    assert any("rj_solves_per_sec" in f for f in failures)
    assert any("table1_seconds" in f for f in failures)
    # Improvements never fail.
    good = {
        "rj_solves_per_sec": _metric(5000.0, "solves/s"),
        "table1_seconds": _metric(1.0, "s"),
    }
    assert compare_metrics(good, baseline) == []
    # Missing metrics are ignored (forward/backward compatible baselines).
    assert compare_metrics({}, baseline) == []


# ---------------------------------------------------------------------------
# SlotAllocator micro-optimization: fast exit must not change behavior
# ---------------------------------------------------------------------------
def test_slot_allocator_fast_exit_preserves_semantics():
    alloc = SlotAllocator(units=2)
    # No skip pointers yet: queries return the requested cycle.
    assert alloc.allocate(3) == 3
    assert alloc.allocate(3) == 3  # second unit of cycle 3
    assert alloc.used_in(3) == 2
    # Cycle 3 is now full: the skip pointer forwards to 4.
    assert alloc.allocate(3) == 4
    assert alloc.allocate(0) == 0
    assert alloc.allocate(-5) == 0  # clamped to cycle 0
    # Fill 4 as well, then the forwarding chain 3 -> 4 -> 5 must resolve.
    assert alloc.allocate(4) == 4
    assert alloc.allocate(0) == 1  # cycle 0 full, skip pointer forwards
    assert alloc.allocate(3) == 5
    assert alloc.used_in(4) == 2


def test_slot_allocator_single_unit_sequence():
    alloc = SlotAllocator(units=1)
    assert [alloc.allocate(0) for _ in range(5)] == [0, 1, 2, 3, 4]
    assert alloc.allocate(2) == 5
