"""Unit tests for the content-addressed result cache (repro.cache).

Covers the two key invariants the caching design rests on:

* **Canonical hashing** — cosmetic permutations (edge-list order, dict-key
  order, block names) hash identically, while every semantic change (an
  opcode, a latency, a probability, a machine parameter, a version bump)
  changes the hash.
* **Store robustness** — atomic round-trips, LRU eviction, gc, and the
  corrupt-entry contract: garbage on disk is deleted, counted under
  ``cache.corrupt``, and transparently recomputed.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import cache as result_cache
from repro.cache.keys import (
    Unkeyable,
    cache_key,
    canonical_value,
    machine_digest,
    superblock_digest,
    superblock_identity_digest,
)
from repro.cache.store import _MAGIC, ResultCache
from repro.ir.builder import SuperblockBuilder
from repro.ir.serialize import superblock_from_dict, superblock_to_dict
from repro.machine.machine import FS4, GP2, MachineConfig


def _sample_sb(name: str = "sample", exec_freq: float = 1.0):
    return (
        SuperblockBuilder(name, exec_freq=exec_freq)
        .op("add")
        .op("load", preds=[0])
        .op("add", preds={1: 3})
        .exit(0.25, preds=[0, 2])
        .op("mul", preds=[1])
        .last_exit(preds=[4])
    )


class TestCanonicalHashing:
    def test_digest_is_deterministic(self):
        assert superblock_digest(_sample_sb()) == superblock_digest(_sample_sb())

    def test_edge_reordering_is_cosmetic(self):
        data = superblock_to_dict(_sample_sb())
        shuffled = dict(data, edges=list(reversed(data["edges"])))
        a = superblock_from_dict(data)
        b = superblock_from_dict(shuffled)
        assert superblock_digest(a) == superblock_digest(b)

    def test_name_and_exec_freq_are_cosmetic(self):
        a = _sample_sb("alpha", exec_freq=1.0)
        b = _sample_sb("beta", exec_freq=99.0)
        assert superblock_digest(a) == superblock_digest(b)

    def test_identity_digest_separates_names(self):
        a = _sample_sb("alpha")
        b = _sample_sb("beta")
        assert superblock_identity_digest(a) != superblock_identity_digest(b)
        assert superblock_identity_digest(a) == superblock_identity_digest(
            _sample_sb("alpha")
        )

    def test_latency_change_changes_digest(self):
        base = _sample_sb()
        data = superblock_to_dict(base)
        bumped = dict(data, edges=[
            [src, dst, lat + (1 if (src, dst) == (1, 2) else 0)]
            for src, dst, lat in data["edges"]
        ])
        assert superblock_digest(base) != superblock_digest(
            superblock_from_dict(bumped)
        )

    def test_probability_change_changes_digest(self):
        a = (
            SuperblockBuilder("p")
            .op("add").exit(0.25, preds=[0]).op("add").last_exit(preds=[1])
        )
        b = (
            SuperblockBuilder("p")
            .op("add").exit(0.26, preds=[0]).op("add").last_exit(preds=[1])
        )
        assert superblock_digest(a) != superblock_digest(b)

    def test_opcode_change_changes_digest(self):
        a = (
            SuperblockBuilder("o").op("add").last_exit(preds=[0])
        )
        b = (
            SuperblockBuilder("o").op("load").last_exit(preds=[0])
        )
        assert superblock_digest(a) != superblock_digest(b)

    def test_machine_digest_ignores_name_and_dict_order(self):
        a = dataclasses.replace(GP2, name="renamed")
        assert machine_digest(a) == machine_digest(GP2)
        flipped = dataclasses.replace(
            GP2,
            units=dict(reversed(list(GP2.units.items()))),
            class_map=dict(reversed(list(GP2.class_map.items()))),
        )
        assert machine_digest(flipped) == machine_digest(GP2)

    def test_machine_units_change_changes_digest(self):
        assert machine_digest(GP2) != machine_digest(FS4)
        wider = dataclasses.replace(
            GP2, units={k: v + 1 for k, v in GP2.units.items()}
        )
        assert machine_digest(wider) != machine_digest(GP2)

    def test_occupancy_change_changes_digest(self):
        blocking = dataclasses.replace(GP2, occupancy={"div": 4})
        assert machine_digest(blocking) != machine_digest(GP2)

    def test_version_and_algorithm_separate_keys(self):
        parts = [superblock_digest(_sample_sb()), machine_digest(GP2)]
        assert cache_key("bounds", 1, parts) != cache_key("bounds", 2, parts)
        assert cache_key("bounds", 1, parts) != cache_key("ilp", 1, parts)
        assert cache_key("bounds", 1, parts) == cache_key("bounds", 1, list(parts))

    def test_canonical_value_dict_order_invariant(self):
        assert canonical_value({"a": 1, "b": 2.5}) == canonical_value(
            {"b": 2.5, "a": 1}
        )

    def test_canonical_value_distinguishes_float_from_int(self):
        assert canonical_value(1.0) != canonical_value(1)

    def test_canonical_value_rejects_lambdas(self):
        with pytest.raises(Unkeyable):
            canonical_value(lambda sb: {})


class TestResultCacheStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["x"])
        assert cache.get(key) == (False, None)
        value = ({"wct": 3.5}, {"counters": {"rj.place": 4}})
        cache.put(key, value)
        fresh = ResultCache(tmp_path)  # no memory front: exercises disk
        assert fresh.get(key) == (True, value)
        assert fresh.stats.hits == 1 and fresh.stats.memory_hits == 0

    def test_memory_lru_eviction(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=2)
        keys = [cache_key("t", 1, [i]) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert cache.stats.evictions == 1
        # Oldest fell out of memory but is still served from disk.
        assert cache.get(keys[0]) == (True, 0)
        assert cache.stats.memory_hits == 0
        # Most-recently-used entries are still memory-resident.
        cache.get(keys[2])
        assert cache.stats.memory_hits == 1

    def test_lru_recency_order(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=2)
        a, b, c = (cache_key("t", 1, [i]) for i in "abc")
        cache.put(a, 1)
        cache.put(b, 2)
        cache.get(a)  # refresh a; b is now least-recent
        cache.put(c, 3)  # evicts b
        cache.get(a)
        cache.get(c)
        assert cache.stats.memory_hits == 3
        cache.get(b)
        assert cache.stats.memory_hits == 3  # b came from disk

    def test_corrupt_entry_is_deleted_counted_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["corrupt"])
        cache.put(key, {"answer": 42})
        path = cache.path_for(key)
        path.write_bytes(b"\x00garbage bytes, not a cache entry\xff")
        fresh = ResultCache(tmp_path)
        hit, value = fresh.get(key)
        assert (hit, value) == (False, None)
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert not path.exists(), "corrupt entry must be deleted on contact"
        # The caller recomputes and writes back; the store heals.
        fresh.put(key, {"answer": 42})
        assert ResultCache(tmp_path).get(key) == (True, {"answer": 42})

    def test_truncated_entry_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["trunc"])
        cache.put(key, list(range(100)))
        path = cache.path_for(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == (False, None)
        assert fresh.stats.corrupt == 1
        assert not path.exists()

    def test_digest_mismatch_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["flip"])
        cache.put(key, "payload")
        path = cache.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit; magic + digest stay intact
        path.write_bytes(bytes(blob))
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == (False, None)
        assert fresh.stats.corrupt == 1

    def test_unpicklable_payload_is_corrupt(self, tmp_path):
        import hashlib

        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["unpickle"])
        payload = b"definitely not a pickle"
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(_MAGIC + hashlib.sha256(payload).digest() + payload)
        assert cache.get(key) == (False, None)
        assert cache.stats.corrupt == 1

    def test_readonly_serves_but_never_writes(self, tmp_path):
        writer = ResultCache(tmp_path)
        key = cache_key("t", 1, ["ro"])
        writer.put(key, "v")
        ro = ResultCache(tmp_path, readonly=True)
        assert ro.get(key) == (True, "v")
        other = cache_key("t", 1, ["ro2"])
        ro.put(other, "w")
        assert ResultCache(tmp_path).get(other) == (False, None)

    def test_gc_by_age_and_size(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [cache_key("t", 1, [i]) for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, b"x" * 100)
        import os

        # Backdate the first two entries by an hour.
        for key in keys[:2]:
            os.utime(cache.path_for(key), (1_000_000, 1_000_000))
        now = 1_000_000 + 3600.0
        res = cache.gc(max_age_s=60, now=now)
        assert res.removed == 2 and res.kept == 2
        assert cache.stats.evictions == 2
        # Size trim: keep at most one entry's worth of bytes.
        entry_bytes = cache.path_for(keys[2]).stat().st_size
        res = cache.gc(max_bytes=entry_bytes, now=now)
        assert res.removed == 1 and res.kept == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(cache_key("t", 1, [i]), i)
        assert cache.clear() == 3
        assert cache.summary()["entries"] == 0

    def test_summary_counts_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [cache_key("t", 1, [i]) for i in range(5)]
        for key in keys:
            cache.put(key, "v")
        summary = cache.summary()
        assert summary["entries"] == 5
        assert summary["shards"] == len({k[:2] for k in keys})
        assert summary["bytes"] > 0

    def test_values_survive_pickle_boundary(self, tmp_path):
        """Entries hold arbitrary picklable values, not just JSON."""
        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["obj"])
        value = {"issue": {0: 0, 3: 1}, "delta": {"timers": {}}}
        cache.put(key, pickle.loads(pickle.dumps(value)))
        assert ResultCache(tmp_path).get(key) == (True, value)


class TestAmbientApi:
    def test_install_and_active(self, tmp_path):
        assert result_cache.active() is None
        cache = ResultCache(tmp_path)
        with result_cache.install(cache):
            assert result_cache.active() is cache
            inner = ResultCache(tmp_path / "inner")
            with result_cache.install(inner):
                assert result_cache.active() is inner
            assert result_cache.active() is cache
        assert result_cache.active() is None

    def test_install_none_is_noop_scope(self):
        with result_cache.install(None):
            assert result_cache.active() is None

    def test_cached_helper(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert result_cache.cached("t", 1, ["k"], compute) == 7
        assert len(calls) == 1  # no cache installed: plain call
        with result_cache.install(ResultCache(tmp_path)):
            assert result_cache.cached("t", 1, ["k"], compute) == 7
            assert result_cache.cached("t", 1, ["k"], compute) == 7
        assert len(calls) == 2  # second call inside the scope was a hit

    def test_cached_unkeyable_degrades(self, tmp_path):
        with result_cache.install(ResultCache(tmp_path)):
            out = result_cache.cached(
                "t", 1, [lambda: None], lambda: "computed"
            )
        assert out == "computed"

    def test_kernel_version_marks(self):
        @result_cache.kernel_version(3)
        def kernel(sb):
            return sb

        assert kernel.__cache_version__ == 3

    def test_deactivate_clears_stack(self, tmp_path):
        cache = ResultCache(tmp_path)
        result_cache._STACK.append(cache)
        try:
            assert result_cache.active() is cache
            result_cache.deactivate()
            assert result_cache.active() is None
        finally:
            result_cache._STACK.clear()

    def test_publish_metrics(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        cache = ResultCache(tmp_path)
        key = cache_key("t", 1, ["m"])
        cache.get(key)
        cache.put(key, 1)
        cache.get(key)
        registry = MetricsRegistry()
        cache.publish_metrics(registry)
        counters = registry.as_dict()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.writes"] == 1

    def test_publish_metrics_without_registry_is_noop(self, tmp_path):
        ResultCache(tmp_path).publish_metrics()  # no ambient registry
