"""Tests for the evaluation metrics."""

import math

import pytest

from repro.eval.metrics import (
    CorpusSummary,
    SuperblockResult,
    noprofile_weights,
    reweighted,
)
from repro.ir.examples import figure1


def result(name, freq, bound, wcts, **kwargs):
    return SuperblockResult(
        name=name,
        exec_freq=freq,
        tightest_bound=bound,
        bound_wct={"LC": bound},
        heuristic_wct=wcts,
        **kwargs,
    )


class TestSuperblockResult:
    def test_optimal_detection(self):
        r = result("a", 1.0, 5.0, {"x": 5.0, "y": 6.0})
        assert r.optimal("x")
        assert not r.optimal("y")
        assert not r.trivial

    def test_trivial_requires_all_optimal(self):
        r = result("a", 1.0, 5.0, {"x": 5.0, "y": 5.0})
        assert r.trivial

    def test_extra_dynamic_cycles(self):
        r = result("a", 10.0, 5.0, {"x": 6.5})
        assert r.extra_dynamic_cycles("x") == pytest.approx(15.0)


class TestCorpusSummary:
    def make_summary(self):
        return CorpusSummary(
            machine="GP2",
            results=[
                result("triv", 2.0, 4.0, {"x": 4.0, "y": 4.0}),
                result("hard", 1.0, 10.0, {"x": 11.0, "y": 10.0}),
            ],
        )

    def test_bound_cycles(self):
        s = self.make_summary()
        assert s.bound_cycles == pytest.approx(2 * 4 + 1 * 10)

    def test_trivial_cycle_fraction(self):
        s = self.make_summary()
        assert s.trivial_cycle_fraction == pytest.approx(8 / 18)

    def test_slowdown_over_nontrivial_only(self):
        s = self.make_summary()
        # Nontrivial base = 10; heuristic x spends 11 -> 10% slowdown.
        assert s.slowdown_percent("x") == pytest.approx(10.0)
        assert s.slowdown_percent("y") == pytest.approx(0.0)

    def test_optimal_fraction(self):
        s = self.make_summary()
        assert s.optimal_fraction("x") == pytest.approx(0.5)
        assert s.optimal_fraction("x", nontrivial_only=True) == 0.0
        assert s.optimal_fraction("y", nontrivial_only=True) == 1.0

    def test_extra_cycle_distribution_sorted(self):
        s = self.make_summary()
        assert s.extra_cycle_distribution("x") == [0.0, 1.0]

    def test_empty_summary_degenerates(self):
        s = CorpusSummary(machine="GP2", results=[])
        assert s.slowdown_percent("x") == 0.0
        assert s.optimal_fraction("x") == 1.0


class TestReweighting:
    def test_reweighted_replaces_probabilities(self):
        sb = figure1(side_prob=0.25)
        sb2 = reweighted(sb, {3: 1.0, 16: 3.0})
        assert sb2.weights[3] == pytest.approx(0.25)
        assert sb2.weights[16] == pytest.approx(0.75)
        # Structure untouched.
        assert sorted(sb2.graph.edges()) == sorted(sb.graph.edges())

    def test_noprofile_weights(self):
        sb = figure1()
        w = noprofile_weights(sb)
        assert w == {3: 1.0, 16: 1000.0}

    def test_reweighted_rejects_zero_mass(self):
        sb = figure1()
        with pytest.raises(ValueError):
            reweighted(sb, {3: 0.0, 16: 0.0})

    def test_noprofile_normalizes(self):
        sb = figure1()
        sb2 = reweighted(sb, noprofile_weights(sb))
        assert math.isclose(sum(sb2.weights.values()), 1.0)
