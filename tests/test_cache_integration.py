"""Integration tests: caching must be invisible except for speed.

The contract (docs/caching.md): for any entry point — bound suites, exact
solvers, corpus sweeps, the table/figure CLI — running uncached, running
cold through a cache, and running warm from that cache all produce
bit-identical results AND bit-identical merged metric counters, serial or
parallel. The cache may only change wall-clock time.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import cache as result_cache
from repro.bounds.superblock_bounds import BoundSuite
from repro.cli import main
from repro.eval.bounds_eval import bound_quality
from repro.eval.sched_eval import evaluate_corpus
from repro.ir.examples import figure2
from repro.machine.machine import GP2
from repro.obs.metrics import MetricsRegistry
from repro.schedulers.ilp import ilp_schedule
from repro.schedulers.optimal import optimal_schedule
from repro.workloads.corpus import specint95_corpus

FAST_HEURISTICS = ("cp", "dhasy", "balance")


@pytest.fixture(scope="module")
def cache_corpus():
    return specint95_corpus(scale=8, max_ops=24, seed=5)


def _evaluate(corpus, jobs=None):
    metrics = MetricsRegistry()
    quality = bound_quality(corpus, [GP2], jobs=jobs, metrics=metrics)
    summary = evaluate_corpus(
        corpus, GP2, heuristics=FAST_HEURISTICS, jobs=jobs, metrics=metrics
    )
    return quality, summary, metrics.as_dict()


class TestCorpusCacheIdentity:
    def test_cold_warm_serial_parallel_identical(self, cache_corpus, tmp_path):
        ref = _evaluate(cache_corpus)
        cold_cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(cold_cache):
            cold = _evaluate(cache_corpus)
        assert cold_cache.stats.writes > 0
        warm_cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(warm_cache):
            warm = _evaluate(cache_corpus)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits > 0
        par_cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(par_cache):
            par_warm = _evaluate(cache_corpus, jobs=2)
        with result_cache.install(result_cache.ResultCache(tmp_path / "p")):
            par_cold = _evaluate(cache_corpus, jobs=2)
        assert cold == ref
        assert warm == ref
        assert par_warm == ref
        assert par_cold == ref

    def test_cache_bookkeeping_stays_out_of_metrics(self, cache_corpus, tmp_path):
        """Stored metric deltas must never contain cache.* counters."""
        with result_cache.install(result_cache.ResultCache(tmp_path)):
            _quality, _summary, metrics = _evaluate(cache_corpus)
        assert not [k for k in metrics["counters"] if k.startswith("cache.")]


class TestBoundSuiteCache:
    def test_suite_cold_and_warm_match_uncached(self, tmp_path):
        sb = figure2()
        ref = BoundSuite(sb, GP2).compute()
        with result_cache.install(result_cache.ResultCache(tmp_path)):
            cold = BoundSuite(sb, GP2).compute()
        warm_cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(warm_cache):
            warm = BoundSuite(sb, GP2).compute()
        assert cold.wct == ref.wct and cold.tightest == ref.tightest
        assert warm.wct == ref.wct and warm.tightest == ref.tightest
        assert warm_cache.stats.misses == 0


class TestExactSolverCache:
    def test_ilp_warm_hit_returns_identical_schedule(self, tmp_path):
        sb = figure2()
        ref = ilp_schedule(sb, GP2)
        cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(cache):
            cold = ilp_schedule(sb, GP2)
            warm = ilp_schedule(sb, GP2)
        assert cold.issue == ref.issue and cold.wct == ref.wct
        assert warm.issue == ref.issue and warm.stats == ref.stats
        assert cache.stats.hits >= 1

    def test_bnb_warm_hit_returns_identical_schedule(self, tmp_path):
        sb = figure2()
        ref = optimal_schedule(sb, GP2)
        cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(cache):
            cold = optimal_schedule(sb, GP2)
            warm = optimal_schedule(sb, GP2)
        assert cold.issue == ref.issue and warm.issue == ref.issue
        assert warm.wct == ref.wct
        assert cache.stats.hits >= 1

    def test_bnb_budget_in_key(self, tmp_path):
        """A completed large-budget search must not satisfy a smaller one."""
        sb = figure2()
        cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(cache):
            optimal_schedule(sb, GP2, budget=2_000_000)
            before = cache.stats.hits
            optimal_schedule(sb, GP2, budget=1_000_000)
            assert cache.stats.hits == before  # different budget: no hit


class TestCliCacheFlags:
    TABLE_ARGS = ["table3", "--scale", "8", "--max-ops", "24", "--seed", "5",
                  "--machines", "GP2", "--no-triplewise"]

    def test_table_output_identical_with_and_without_cache(
        self, tmp_path, capsys
    ):
        assert main(self.TABLE_ARGS) == 0
        ref = capsys.readouterr().out
        cache_dir = str(tmp_path / "cache")
        assert main(self.TABLE_ARGS + ["--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert main(self.TABLE_ARGS + ["--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert cold == ref
        assert warm == ref

    def test_cache_stats_flag(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(self.TABLE_ARGS + ["--cache-dir", cache_dir, "--cache-stats"])
        out = capsys.readouterr().out
        assert "misses" in out and "entries" in out

    def test_env_var_enables_and_no_cache_disables(
        self, tmp_path, monkeypatch, capsys
    ):
        cache_dir = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        main(self.TABLE_ARGS + ["--cache-stats"])
        out = capsys.readouterr().out
        assert "writes" in out
        assert cache_dir.is_dir()
        main(self.TABLE_ARGS + ["--no-cache", "--cache-stats"])
        out = capsys.readouterr().out
        assert "cache: disabled" in out

    def test_cache_subcommands(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(self.TABLE_ARGS + ["--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "bytes:" in out
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-age-days", "30"]) == 0
        assert "kept" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_gc_requires_a_limit(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 1
        assert "--max-mb" in capsys.readouterr().err

    def test_cache_without_directory_rejected(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 1
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_verify_findings_out(self, tmp_path, capsys):
        path = tmp_path / "findings.json"
        assert main(["verify", "--quick", "--fuzz", "5",
                     "--findings-out", str(path)]) == 0
        capsys.readouterr()
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["cases"] == 5
        assert data["findings"] == []

    def test_verify_cache_family(self, capsys):
        assert main(["verify", "--quick", "--fuzz", "5",
                     "--family", "cache"]) == 0
        assert "families cache" in capsys.readouterr().out


@pytest.mark.perf
@pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock speedup gate is too noisy for shared CI runners; "
    "run locally via benchmarks/run_bench.sh",
)
class TestWarmCachePerf:
    def test_warm_tables_at_least_3x_faster(self, tmp_path, capsys):
        """ISSUE 4 acceptance: a warm second `tables` run is >=3x faster."""
        args = ["table3", "--scale", "24", "--max-ops", "60", "--seed", "7",
                "--cache-dir", str(tmp_path / "cache")]
        t0 = time.perf_counter()
        assert main(args) == 0
        cold_s = time.perf_counter() - t0
        cold_out = capsys.readouterr().out
        t0 = time.perf_counter()
        assert main(args) == 0
        warm_s = time.perf_counter() - t0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        assert warm_s * 3 <= cold_s, (
            f"warm run {warm_s:.3f}s not >=3x faster than cold {cold_s:.3f}s"
        )
