"""Unit tests for the CP, Hu, RJ, and LC per-branch bounds."""

import pytest

from repro.bounds.branch_rj import rj_branch_bound, rj_branch_bounds
from repro.bounds.critical_path import cp_branch_bounds
from repro.bounds.hu import hu_branch_bound, hu_branch_bounds
from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc, lc_branch_bounds
from repro.ir.builder import SuperblockBuilder
from repro.ir.examples import figure1, figure2, figure3
from repro.machine.machine import FS4, GP1, GP2, GP4


class TestCriticalPathBound:
    def test_fig1_cp_values(self):
        sb = figure1()
        bounds = cp_branch_bounds(sb)
        assert bounds[3] == 1  # one cycle after ops 0-2
        assert bounds[16] == 7  # the 7-cycle chain

    def test_counters_incremented(self):
        counters = Counters()
        cp_branch_bounds(figure1(), counters)
        assert counters.total("cp") > 0


class TestHuBound:
    def test_fig1_resource_bound(self):
        """Branch 16 has 16 predecessors: >= 8 cycles on a 2-wide machine."""
        sb = figure1()
        assert hu_branch_bound(sb, GP2, 16) == 8
        assert hu_branch_bound(sb, GP2, 3) == 2  # 3 preds + branch issue

    def test_hu_at_least_cp(self, tiny_corpus):
        for sb in tiny_corpus:
            cp = cp_branch_bounds(sb)
            for b, hu in hu_branch_bounds(sb, GP1).items():
                assert hu >= cp[b]

    def test_hu_width_sensitivity(self):
        sb = figure1()
        # On GP4 resources stop binding branch 16; the chain does.
        assert hu_branch_bound(sb, GP4, 16) == 7

    def test_nested_deadline_levels(self):
        # The Figure 6 situation: ops with early deadlines force a delay
        # that both the dependence bound and a naive count-all-preds bound
        # miss. Ops 2-5 must all finish by cycle 1 (they feed the level
        # above), so cycle 0 overflows on a 2-wide machine.
        sb = (
            SuperblockBuilder("fig6ish")
            .op("add")                    # 0
            .op("add")                    # 1
            .op("add")                    # 2
            .op("add")                    # 3
            .op("add")                    # 4
            .op("add")                    # 5
            .op("add", preds=[2, 3])      # 6
            .op("add", preds=[4, 5])      # 7
            .last_exit(preds=[0, 1, 6, 7])  # 8
        )
        # Dependence bound: 0-5 @0, 6,7 @1, branch @2. But the nine ops
        # with deadlines {0,0,0,0,0,0,1,1,2} overflow the 2-wide machine:
        # the deadline-2 level needs 9 slots in 6 => the branch slips to 4
        # (which is also the true optimum: 2,3 / 4,5 / 6,7 / 0,1 / branch).
        assert sb.graph.early_dc()[8] == 2
        assert hu_branch_bound(sb, GP2, 8) == 4


class TestRimJainBranchBound:
    def test_fig1_values(self):
        sb = figure1()
        bounds = rj_branch_bounds(sb, GP2)
        assert bounds[16] == 8
        assert bounds[3] == 2

    def test_rj_at_least_hu_on_examples(self):
        for sb in (figure1(), figure2(), figure3()):
            for machine in (GP1, GP2, FS4):
                hu = hu_branch_bounds(sb, machine)
                rj = rj_branch_bounds(sb, machine)
                for b in sb.branches:
                    assert rj[b] >= hu[b] - 0  # RJ dominates Hu here

    def test_rj_respects_latencies(self):
        sb = (
            SuperblockBuilder("lat")
            .op("load")
            .op("add", preds=[0])
            .last_exit(preds=[1])
        )
        assert rj_branch_bound(sb, GP2, 2) == 3  # load@0, add@2, branch@3

    def test_early_dc_computed_once_per_superblock(self, monkeypatch):
        """``rj_branch_bounds`` hoists the branch-independent release times.

        ``graph.early_dc()`` copies its cached O(n) list on every call, so
        the all-branches entry point must fetch it once and thread it
        through, not once per branch. This pins the *python* path; the
        numpy backend amortizes the call into its cached context instead.
        """
        from repro import kernels
        from repro.ir.depgraph import DependenceGraph

        sb = figure1()
        sb.graph.early_dc()  # build the lazy cache outside the counted window
        calls: list[int] = []
        uncounted = DependenceGraph.early_dc

        def counted(graph):
            calls.append(1)
            return uncounted(graph)

        monkeypatch.setattr(DependenceGraph, "early_dc", counted)
        with kernels.forced("python"):
            reference = {b: rj_branch_bound(sb, GP2, b) for b in sb.branches}
            assert len(calls) == len(sb.branches)  # per-branch path: one each
            calls.clear()
            assert rj_branch_bounds(sb, GP2) == reference
            assert calls == [1]


class TestLangevinCerny:
    def test_early_rc_dominates_early_dc(self, tiny_corpus):
        for sb in tiny_corpus:
            dc = sb.graph.early_dc()
            rc = early_rc(sb.graph, GP1)
            assert all(r >= d for r, d in zip(rc, dc))

    def test_fast_path_matches_full_recursion(self, tiny_corpus):
        """Theorem 1: the trivial recursion shortcut is exact."""
        for sb in tiny_corpus:
            for machine in (GP1, GP2, FS4):
                fast = early_rc(sb.graph, machine, fast_path=True)
                full = early_rc(sb.graph, machine, fast_path=False)
                assert fast == full, sb.name

    def test_fast_path_reduces_work(self, tiny_corpus):
        saved = 0
        total = 0
        for sb in tiny_corpus:
            c_fast, c_full = Counters(), Counters()
            early_rc(sb.graph, GP2, c_fast, fast_path=True)
            early_rc(sb.graph, GP2, c_full, fast_path=False)
            saved += c_fast.get("lc.trivial")
            total += sb.num_operations
            assert c_fast.total("lc") <= c_full.total("lc")
        assert saved > 0  # the shortcut fires somewhere in the corpus

    def test_fig3_early_rc_catches_antichain(self):
        """Observation 2: EarlyRC[9] = 5, one above the dependence bound."""
        sb = figure3()
        rc = early_rc(sb.graph, GP2)
        assert sb.graph.early_dc()[9] == 4
        assert rc[9] == 5

    def test_lc_branch_bounds_wrapper(self):
        sb = figure1()
        bounds = lc_branch_bounds(sb.graph, sb.branches, GP2)
        assert bounds == {3: 2, 16: 8}

    def test_lc_at_least_rj(self, tiny_corpus):
        for sb in tiny_corpus:
            rj = rj_branch_bounds(sb, GP2)
            lc = lc_branch_bounds(sb.graph, sb.branches, GP2)
            for b in sb.branches:
                assert lc[b] >= rj[b]
