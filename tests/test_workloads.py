"""Tests for the synthetic SPECint95 workload generator and corpora."""

import math

import pytest

from repro.ir.validate import validate_superblock
from repro.workloads.corpus import Corpus, specint95_corpus
from repro.workloads.generator import generate_superblock
from repro.workloads.profiles import (
    SPECINT95_PROFILES,
    BenchmarkProfile,
    profile_by_name,
)


class TestProfiles:
    def test_eight_specint95_programs(self):
        names = {p.name for p in SPECINT95_PROFILES}
        assert names == {
            "gcc", "go", "compress", "ijpeg", "li", "m88ksim", "perl", "vortex"
        }

    def test_shares_sum_to_one(self):
        assert math.isclose(
            sum(p.share for p in SPECINT95_PROFILES), 1.0, abs_tol=1e-9
        )

    def test_profile_lookup(self):
        assert profile_by_name("GCC").name == "gcc"
        with pytest.raises(KeyError, match="unknown benchmark"):
            profile_by_name("doom")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad", share=0.5, mean_block_ops=5, mean_branches=0.5,
                max_branches=4, mem_frac=0.3, float_frac=0.0,
                consume_prob=0.5, cross_block_prob=0.2, liveout_prob=0.6,
                side_exit_scale=0.1, hot_side_exit_prob=0.1, freq_alpha=1.0,
            )

    def test_only_ijpeg_has_float(self):
        for p in SPECINT95_PROFILES:
            if p.name == "ijpeg":
                assert p.float_frac > 0
            else:
                assert p.float_frac == 0


class TestGenerator:
    def test_deterministic(self):
        p = profile_by_name("gcc")
        a = generate_superblock(p, 3, seed=42)
        b = generate_superblock(p, 3, seed=42)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert a.weights == b.weights
        assert a.exec_freq == b.exec_freq

    def test_different_seeds_differ(self):
        p = profile_by_name("gcc")
        a = generate_superblock(p, 3, seed=1)
        b = generate_superblock(p, 3, seed=2)
        assert (
            sorted(a.graph.edges()) != sorted(b.graph.edges())
            or a.weights != b.weights
        )

    def test_all_generated_superblocks_validate(self):
        for p in SPECINT95_PROFILES:
            for i in range(6):
                sb = generate_superblock(p, i, seed=13)
                validate_superblock(sb)

    def test_max_ops_respected(self):
        p = profile_by_name("go")
        for i in range(20):
            sb = generate_superblock(p, i, seed=5, max_ops=30)
            assert sb.num_operations <= 30

    def test_every_op_reaches_an_exit(self):
        p = profile_by_name("vortex")
        for i in range(10):
            sb = generate_superblock(p, i, seed=3)
            final = sb.last_branch
            reach = set(sb.graph.ancestors(final)) | {final}
            assert reach == set(range(sb.num_operations))

    def test_stores_barriered_by_preceding_exit(self):
        """Speculation constraint: every store after a side exit depends
        (transitively) on that exit."""
        p = profile_by_name("vortex")  # memory heavy
        checked = 0
        for i in range(20):
            sb = generate_superblock(p, i, seed=23)
            for op in sb.operations:
                if op.opcode.name != "store":
                    continue
                prior_exits = [b for b in sb.branches if b < op.index]
                if prior_exits:
                    assert sb.graph.is_ancestor(prior_exits[-1], op.index)
                    checked += 1
        assert checked > 0

    def test_memory_ordering_within_regions(self):
        """Two stores are never reorderable: some path orders same-region
        pairs (spot-check via generated superblocks)."""
        p = profile_by_name("vortex")
        found_store_pair = False
        for i in range(20):
            sb = generate_superblock(p, i, seed=29)
            stores = [
                op.index for op in sb.operations if op.opcode.name == "store"
            ]
            for a, b in zip(stores, stores[1:]):
                # Stores in the same region are chained; different regions
                # may be independent — at least one ordered pair must show
                # up across the sample.
                if sb.graph.is_ancestor(a, b):
                    found_store_pair = True
        assert found_store_pair

    def test_exit_probabilities_decay_statistically(self):
        """Fall-through exits carry most of the mass on average."""
        p = profile_by_name("gcc")
        last_mass = 0.0
        count = 0
        for i in range(40):
            sb = generate_superblock(p, i, seed=17)
            last_mass += sb.weights[sb.last_branch]
            count += 1
        assert last_mass / count > 0.4


class TestCorpus:
    def test_scale_controls_size(self):
        c = specint95_corpus(scale=40, seed=1, max_ops=40)
        assert 36 <= len(c) <= 44  # rounding of per-benchmark shares

    def test_benchmark_subsetting(self, tiny_corpus):
        gcc = tiny_corpus.by_benchmark("gcc")
        assert len(gcc) > 0
        assert all(sb.name.startswith("gcc.") for sb in gcc)

    def test_stats_shape(self, tiny_corpus):
        stats = tiny_corpus.stats()
        assert stats["superblocks"] == len(tiny_corpus)
        assert stats["max_ops"] >= stats["mean_ops"] >= 1

    def test_save_load_round_trip(self, tmp_path, tiny_corpus):
        path = tmp_path / "corpus.jsonl"
        tiny_corpus.save(path)
        loaded = Corpus.load(path)
        assert len(loaded) == len(tiny_corpus)
        assert loaded.name == tiny_corpus.name
        for a, b in zip(tiny_corpus, loaded):
            assert a.name == b.name
            assert sorted(a.graph.edges()) == sorted(b.graph.edges())
            assert a.exec_freq == b.exec_freq

    def test_scale_below_benchmarks_rejected(self):
        with pytest.raises(ValueError, match="below the number"):
            specint95_corpus(scale=4)

    def test_indexing_and_iteration(self, tiny_corpus):
        assert tiny_corpus[0].name == next(iter(tiny_corpus)).name
