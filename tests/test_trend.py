"""Bench trend analytics: history records, comparison gate, rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import trend


def _payload(t1: float = 2.0, rate: float = 1000.0) -> dict:
    return {
        "table1_seconds": {"value": t1, "unit": "s", "seed": 1999},
        "rj_solves_per_sec": {"value": rate, "unit": "solves/s", "seed": 1999},
        "table1_jobs2_speedup": {"value": 1.7, "unit": "x", "seed": 1999},
        "observability": {"counters": {"cp.visit": 7}},
    }


class TestHistoryRecords:
    def test_make_record_shape(self):
        record = trend.make_record(
            _payload(), label="quick", config={"scale": 12},
            timestamp=123.0, sha="abc123",
        )
        assert record["schema"] == trend.SCHEMA_VERSION
        assert record["timestamp"] == 123.0
        assert record["git_sha"] == "abc123"
        assert record["label"] == "quick"
        assert record["config"] == {"scale": 12}
        # metrics filtered to {value, unit} entries only
        assert "observability" not in record["metrics"]
        assert set(record["metrics"]) == {
            "table1_seconds", "rj_solves_per_sec", "table1_jobs2_speedup",
        }
        # counters ride along from the observability block
        assert record["counters"] == {"cp.visit": 7}

    def test_git_sha_resolves_in_this_checkout(self):
        sha = trend.git_sha()
        assert sha is None or (len(sha) >= 7 and sha.isalnum())

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for i in range(3):
            trend.append_record(
                trend.make_record(
                    _payload(t1=2.0 + i), timestamp=float(i), sha=f"sha{i}"
                ),
                path,
            )
        records = trend.load_history(path)
        assert len(records) == 3
        assert [r["git_sha"] for r in records] == ["sha0", "sha1", "sha2"]
        assert records[2]["metrics"]["table1_seconds"]["value"] == 4.0

    def test_load_history_names_the_bad_line(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        good = json.dumps(trend.make_record(_payload(), timestamp=0.0, sha="x"))
        path.write_text(good + "\n{broken\n")
        with pytest.raises(ValueError, match=r":2:"):
            trend.load_history(path)

    def test_load_history_rejects_non_records(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(ValueError, match="missing 'metrics'"):
            trend.load_history(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        good = json.dumps(trend.make_record(_payload(), timestamp=0.0, sha="x"))
        path.write_text("\n" + good + "\n\n")
        assert len(trend.load_history(path)) == 1


class TestCompareRuns:
    def test_injected_25_percent_slowdown_regresses(self):
        """Acceptance pin: a 25% elapsed-time regression trips the default
        20% threshold."""
        comparison = trend.compare_runs(
            current=_payload(t1=2.5), baseline=_payload(t1=2.0)
        )
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == ["table1_seconds"]
        assert comparison.regressions[0].delta_percent == pytest.approx(25.0)

    def test_throughput_drop_regresses(self):
        comparison = trend.compare_runs(
            current=_payload(rate=700.0), baseline=_payload(rate=1000.0)
        )
        assert [d.name for d in comparison.regressions] == [
            "rj_solves_per_sec"
        ]

    def test_improvements_never_regress(self):
        comparison = trend.compare_runs(
            current=_payload(t1=1.0, rate=2000.0), baseline=_payload()
        )
        assert comparison.ok

    def test_ratio_metrics_are_informational(self):
        current = _payload()
        current["table1_jobs2_speedup"]["value"] = 0.5  # halved speedup
        comparison = trend.compare_runs(current, _payload())
        assert comparison.ok
        delta = next(
            d for d in comparison.deltas if d.name == "table1_jobs2_speedup"
        )
        assert delta.better == "info"

    def test_threshold_is_configurable(self):
        assert trend.compare_runs(
            _payload(t1=2.5), _payload(t1=2.0), threshold=0.30
        ).ok

    def test_observability_block_never_compared(self):
        comparison = trend.compare_runs(_payload(), _payload())
        assert all(d.name != "observability" for d in comparison.deltas)

    def test_one_sided_metrics_listed_not_compared(self):
        current = _payload()
        extra = current.pop("rj_solves_per_sec")
        current["new_metric"] = extra
        comparison = trend.compare_runs(current, _payload())
        assert comparison.only_baseline == ["rj_solves_per_sec"]
        assert comparison.only_current == ["new_metric"]
        assert comparison.ok

    def test_render_flags_regressions(self):
        text = trend.render_comparison(
            trend.compare_runs(_payload(t1=2.5), _payload(t1=2.0))
        )
        assert "REGRESSED" in text
        assert "+25.0%" in text
        assert "1 regression(s): table1_seconds" in text
        ok_text = trend.render_comparison(
            trend.compare_runs(_payload(), _payload())
        )
        assert "no regressions" in ok_text


class TestTrendRendering:
    def test_sparkline_shape(self):
        assert trend.sparkline([]) == ""
        assert trend.sparkline([1.0, 1.0, 1.0]) == "▄▄▄"
        ascending = trend.sparkline([1.0, 2.0, 3.0])
        assert ascending[0] == "▁" and ascending[-1] == "█"

    def _records(self):
        return [
            trend.make_record(
                _payload(t1=2.0 + 0.1 * i),
                label="full" if i % 2 == 0 else "quick",
                timestamp=float(i),
                sha=f"sha{i}",
            )
            for i in range(4)
        ]

    def test_render_trend_shows_series(self):
        text = trend.render_trend(self._records())
        assert "4 record(s), sha0 .. sha3" in text
        assert "table1_seconds" in text
        assert "(+15.0%)" in text  # 2.0 -> 2.3

    def test_render_trend_label_filter(self):
        text = trend.render_trend(self._records(), label="quick")
        assert "2 record(s), sha1 .. sha3" in text
        assert trend.render_trend([], label="full") == (
            "bench trend: no matching history records"
        )

    def test_render_trend_metric_restriction(self):
        text = trend.render_trend(
            self._records(), metrics=("table1_seconds",)
        )
        assert "rj_solves_per_sec" not in text


class TestCompareRunsEdgeCases:
    def test_empty_history_file_loads_as_no_records(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("")
        assert trend.load_history(path) == []
        assert trend.render_trend([]) == (
            "bench trend: no matching history records"
        )

    def test_empty_payloads_compare_clean(self):
        comparison = trend.compare_runs({}, {})
        assert comparison.ok
        assert comparison.deltas == []
        assert "no regressions" in trend.render_comparison(comparison)

    def test_single_record_history_renders(self):
        records = [
            trend.make_record(_payload(), timestamp=0.0, sha="only1")
        ]
        text = trend.render_trend(records)
        assert "1 record(s), only1 .. only1" in text
        # a one-point series has no slope: no percent-change suffix
        line = next(
            l for l in text.splitlines() if "table1_seconds" in l
        )
        assert "2 -> 2 s" in line

    def test_speedup_not_gated_without_usable_cores(self):
        # Neither payload records bench_usable_cores: the jobs2 speedup
        # halves but stays informational — no portable gate without a
        # same-hardware guarantee.
        current = _payload()
        current["table1_jobs2_speedup"]["value"] = 0.5
        comparison = trend.compare_runs(current, _payload())
        assert comparison.ok
        delta = next(
            d for d in comparison.deltas if d.name == "table1_jobs2_speedup"
        )
        assert delta.better == "info"

    def test_speedup_gated_with_matching_usable_cores(self):
        cores = {"value": 4.0, "unit": "cores", "seed": 1999}
        current, baseline = _payload(), _payload()
        current["bench_usable_cores"] = dict(cores)
        baseline["bench_usable_cores"] = dict(cores)
        current["table1_jobs2_speedup"]["value"] = 0.5
        comparison = trend.compare_runs(current, baseline)
        assert [d.name for d in comparison.regressions] == [
            "table1_jobs2_speedup"
        ]

    def test_speedup_not_gated_across_different_core_counts(self):
        current, baseline = _payload(), _payload()
        current["bench_usable_cores"] = {"value": 2.0, "unit": "cores",
                                         "seed": 1999}
        baseline["bench_usable_cores"] = {"value": 8.0, "unit": "cores",
                                          "seed": 1999}
        current["table1_jobs2_speedup"]["value"] = 0.5
        assert trend.compare_runs(current, baseline).ok

    def test_speedup_not_gated_below_required_cores(self):
        cores = {"value": 1.0, "unit": "cores", "seed": 1999}
        current, baseline = _payload(), _payload()
        current["bench_usable_cores"] = dict(cores)
        baseline["bench_usable_cores"] = dict(cores)
        current["table1_jobs2_speedup"]["value"] = 0.5
        assert trend.compare_runs(current, baseline).ok

    def test_non_numeric_usable_cores_ignored(self):
        current, baseline = _payload(), _payload()
        current["bench_usable_cores"] = {"value": "many", "unit": "cores",
                                         "seed": 1999}
        baseline["bench_usable_cores"] = {"value": "many", "unit": "cores",
                                          "seed": 1999}
        current["table1_jobs2_speedup"]["value"] = 0.5
        assert trend.compare_runs(current, baseline).ok


class TestMetricTrendLines:
    def _records(self):
        return [
            trend.make_record(
                _payload(t1=2.0 + 0.5 * i), timestamp=float(i), sha=f"s{i}",
                label="full" if i % 2 == 0 else "quick",
            )
            for i in range(3)
        ]

    def test_one_line_per_requested_metric(self):
        lines = trend.metric_trend_lines(
            self._records(), ("table1_seconds",)
        )
        assert len(lines) == 1
        assert "table1_seconds" in lines[0]
        assert "2 -> 3 s" in lines[0]
        assert "(+50.0%)" in lines[0]

    def test_unknown_metric_marked_no_data(self):
        lines = trend.metric_trend_lines(self._records(), ("nope_metric",))
        assert lines == ["  nope_metric  (no data)"]

    def test_label_filter_restricts_series(self):
        lines = trend.metric_trend_lines(
            self._records(), ("table1_seconds",), label="quick"
        )
        assert "2.5 -> 2.5 s" in lines[0]
