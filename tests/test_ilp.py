"""Tests for the time-indexed MILP scheduler."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.builder import SuperblockBuilder
from repro.ir.examples import figure2, figure3, figure4
from repro.machine.machine import FS4_NP, GP2
from repro.schedulers.base import schedule
from repro.schedulers.ilp import IlpSizeExceeded
from repro.schedulers.optimal import SearchBudgetExceeded
from repro.schedulers.schedule import validate_schedule


class TestIlpScheduler:
    def test_matches_bnb_on_paper_examples(self):
        for sb in (figure2(), figure3(), figure4(0.3), figure4(0.7)):
            ilp = schedule(sb, GP2, "ilp")
            bnb = schedule(sb, GP2, "optimal")
            assert ilp.wct == pytest.approx(bnb.wct), sb.name

    def test_matches_bnb_on_corpus(self, tiny_corpus):
        checked = 0
        for sb in tiny_corpus:
            if sb.num_operations > 12:
                continue
            try:
                bnb = schedule(sb, GP2, "optimal", budget=200_000)
            except SearchBudgetExceeded:
                continue
            try:
                ilp = schedule(sb, GP2, "ilp")
            except IlpSizeExceeded:
                continue
            assert ilp.wct == pytest.approx(bnb.wct), sb.name
            validate_schedule(sb, GP2, ilp)
            checked += 1
        assert checked >= 3

    def test_handles_blocking_units(self):
        """The ILP is the exact reference for non-pipelined machines."""
        sb = (
            SuperblockBuilder("divs")
            .op("fdiv")
            .op("fdiv")
            .last_exit(preds=[0, 1])
        )
        s = schedule(sb, FS4_NP, "ilp")
        validate_schedule(sb, FS4_NP, s)
        a, b = sorted(s.issue[v] for v in (0, 1))
        assert b - a == 9  # exactly back-to-back on the blocking divider

    def test_never_below_tightest_bound(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:6]:
            if sb.num_operations > 14:
                continue
            try:
                s = schedule(sb, GP2, "ilp")
            except IlpSizeExceeded:
                continue
            bound = BoundSuite(sb, GP2).compute().tightest
            assert s.wct >= bound - 1e-6

    def test_size_guard(self):
        b = SuperblockBuilder("big")
        for i in range(40):
            b.op("add", preds=[i - 1] if i else [])
        sb = b.last_exit(preds=[39])
        with pytest.raises(IlpSizeExceeded):
            schedule(sb, GP2, "ilp", max_variables=100)

    def test_explicit_horizon(self):
        sb = figure2()
        s = schedule(sb, GP2, "ilp", horizon=10)
        assert s.stats["horizon"] == 10
        assert s.wct == pytest.approx(schedule(sb, GP2, "optimal").wct)
