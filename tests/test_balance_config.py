"""Tests for BalanceConfig and the ablation grid."""

import pytest

from repro.core.config import ABLATION_GRID, BALANCE, HELP, BalanceConfig


class TestBalanceConfig:
    def test_balance_preset_all_on(self):
        assert BALANCE.use_rc_bounds
        assert BALANCE.help_delay
        assert BALANCE.tradeoff
        assert BALANCE.update_per_op
        assert BALANCE.branch_selection

    def test_help_preset_all_off(self):
        assert not HELP.use_rc_bounds
        assert not HELP.help_delay
        assert not HELP.tradeoff
        assert not HELP.branch_selection
        assert HELP.update_per_op

    def test_tradeoff_requires_rc_bounds(self):
        with pytest.raises(ValueError, match="tradeoff requires"):
            BalanceConfig(use_rc_bounds=False, tradeoff=True)

    def test_negative_reorders_rejected(self):
        with pytest.raises(ValueError):
            BalanceConfig(max_reorders=-1)

    def test_labels_are_unique_and_descriptive(self):
        labels = [cfg.label() for cfg in ABLATION_GRID]
        assert len(set(labels)) == len(labels) == 10
        assert "HlpDel+Bound+Tradeoff+perOp" in labels
        assert "Help+perCycle" in labels

    def test_grid_covers_both_update_modes(self):
        per_op = [c for c in ABLATION_GRID if c.update_per_op]
        per_cycle = [c for c in ABLATION_GRID if not c.update_per_op]
        assert len(per_op) == len(per_cycle) == 5

    def test_balance_label(self):
        assert BALANCE.label() == "HlpDel+Bound+Tradeoff+perOp"
