"""Tests for the register-pressure metric."""

import pytest

from repro.eval.regpressure import (
    max_pressure,
    pressure_increase,
    pressure_profile,
    sequential_pressure,
)
from repro.ir.builder import SuperblockBuilder
from repro.ir.examples import figure1
from repro.machine.machine import GP2, GP4
from repro.schedulers.base import schedule
from repro.schedulers.schedule import make_schedule


def chain_sb():
    """A pure chain: pressure should be 1 everywhere."""
    return (
        SuperblockBuilder("chain")
        .op("add")
        .op("add", preds=[0])
        .op("add", preds=[1])
        .last_exit(preds=[2])
    )


def fanin_sb():
    """Four independent values consumed by one op: pressure up to 4."""
    b = SuperblockBuilder("fanin")
    for _ in range(4):
        b.op("add")
    b.op("add", preds=[0, 1, 2, 3])
    return b.last_exit(preds=[4])


class TestPressureProfile:
    def test_chain_pressure_is_one(self):
        sb = chain_sb()
        s = schedule(sb, GP2, "cp")
        assert max_pressure(sb, s) == 1

    def test_fanin_pressure_counts_live_values(self):
        sb = fanin_sb()
        s = schedule(sb, GP4, "cp")
        # All four producers live simultaneously before the consumer.
        assert max_pressure(sb, s) == 4

    def test_profile_length_matches_schedule(self):
        sb = fanin_sb()
        s = schedule(sb, GP2, "balance")
        profile = pressure_profile(sb, s)
        assert len(profile) == s.length
        assert all(p >= 0 for p in profile)

    def test_wider_issue_raises_pressure(self):
        """More parallelism => more simultaneously live values."""
        sb = fanin_sb()
        narrow = make_schedule(
            sb, GP2, "seq", {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}
        )
        wide = schedule(sb, GP4, "cp")
        assert max_pressure(sb, wide) >= max_pressure(sb, narrow)

    def test_branches_hold_no_registers(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        # The profile never counts more values than non-branch ops.
        non_branches = sum(
            1 for op in two_exit_sb.operations if not op.is_branch
        )
        assert max_pressure(two_exit_sb, s) <= non_branches


class TestSequentialBaseline:
    def test_sequential_pressure_positive(self):
        assert sequential_pressure(fanin_sb()) >= 1

    def test_speculation_increase_nonnegative_on_fig1(self):
        sb = figure1()
        s = schedule(sb, GP2, "cp")
        assert pressure_increase(sb, s) >= 0

    def test_corpus_pressure_sane(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:8]:
            s = schedule(sb, GP2, "balance", validate=False)
            p = max_pressure(sb, s)
            assert 0 <= p <= sb.num_operations
