"""HTML dashboard: self-containment, seeded outlier, CLI round trip.

Acceptance pins: the rendered HTML references no external resource of
any kind (``src=``/``href=``/``url(...)`` absent), and the seeded
loose-bound outlier from tests/test_anomaly.py appears in the anomaly
table by name.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.obs import dashboard, ledger


def _block(sb: str, gap: float, solve: float = 0.001) -> dict:
    return {
        "sb": sb,
        "machine": "FS4",
        "ops": 20,
        "branches": 3,
        "edges": 30,
        "tightest": 100.0,
        "wct": {"balance": 100.0 * (1 + gap / 100.0)},
        "makespan": {"balance": 120},
        "solve_s": solve,
    }


def _record(run_id: str, command: str = "table1", **extra) -> dict:
    record = {
        "schema": 1,
        "run_id": run_id,
        "timestamp": 1000.0,
        "git_sha": "abc1234",
        "command": command,
        "wall_seconds": 2.0,
        "counters": {"cp.visit": 10},
        "blocks": [],
    }
    record.update(extra)
    return record


@pytest.fixture
def seeded_records() -> list[dict]:
    """A history whose newest run carries the pinned gap-50 outlier."""
    history = [_record(f"r{i}") for i in range(4)]
    blocks = [_block(f"sb{i:02d}", gap=1.0 + 0.1 * i) for i in range(7)]
    blocks.append(_block("gcc.sb_outlier", gap=50.0))
    history.append(
        _record(
            "seeded1",
            blocks=blocks,
            span_paths=[
                {"path": "table1.machine", "total_s": 1.5,
                 "self_s": 0.5, "count": 1},
                {"path": "table1.machine;eval.bounds", "total_s": 1.0,
                 "self_s": 1.0, "count": 8},
            ],
            cache={"hits": 8, "misses": 2, "hit_rate": 0.8},
            dispatch={"mode": "pool", "jobs": 2, "utilization": 0.7},
        )
    )
    return history


class TestRenderDashboard:
    def test_seeded_outlier_named_in_anomaly_table(self, seeded_records):
        """Acceptance: the pinned outlier block is reproduced by name."""
        html = dashboard.render_dashboard(seeded_records)
        assert "loose-bound" in html
        assert "gcc.sb_outlier@FS4" in html
        # ... and the block table ranks it first by gap
        first_row = html.split("<h2>Blocks")[1]
        assert first_row.index("gcc.sb_outlier") < first_row.index("sb00")

    def test_html_is_fully_self_contained(self, seeded_records):
        """Acceptance: zero external references — archivable anywhere."""
        html = dashboard.render_dashboard(seeded_records)
        assert re.search(r"(src|href)\s*=", html, re.IGNORECASE) is None
        assert "url(" not in html and "@import" not in html
        assert "<script" not in html
        assert html.startswith("<!DOCTYPE html>")

    def test_sections_render(self, seeded_records):
        html = dashboard.render_dashboard(seeded_records, title="my runs")
        assert "<title>my runs</title>" in html
        assert "<svg" in html  # sparklines + flamegraph
        assert "Run history" in html
        assert "Span flamegraph" in html
        assert "eval.bounds" in html  # flamegraph child rect label/tooltip

    def test_empty_ledger_renders_placeholder(self):
        html = dashboard.render_dashboard([])
        assert "no runs yet" in html
        assert "Service traffic" not in html  # no serve records, no panel

    def test_service_panel_renders_for_serve_records(self, seeded_records):
        serves = [
            _record(f"s{i}", command="serve", wall_seconds=0.01 * (i + 1))
            for i in range(5)
        ]
        serves[-1]["extra"] = {
            "slow_request": {
                "request_id": "slow-<rid>",
                "kind": "schedule",
                "machine": "GP2",
                "blocks": 3,
                "elapsed_ms": 51.0,
                "phases_ms": {"eval": 49.0, "queue": 0.5},
            }
        }
        html = dashboard.render_dashboard(seeded_records + serves)
        assert "Service traffic (5 request(s))" in html
        assert "Slow requests (1 exemplar(s))" in html
        assert "slow-&lt;rid&gt;" in html  # exemplar fields are escaped
        assert html.startswith("<!DOCTYPE html>")

    def test_quiet_history_says_no_anomalies(self):
        records = [_record(f"r{i}") for i in range(3)]
        html = dashboard.render_dashboard(records)
        assert "No anomalies flagged" in html

    def test_blocks_target_newest_block_bearing_run(self, seeded_records):
        # an obs-style tail run without blocks must not blank the tables
        seeded_records.append(_record("tail1", command="report"))
        html = dashboard.render_dashboard(seeded_records)
        assert "gcc.sb_outlier" in html

    def test_bench_history_strip(self, seeded_records):
        for i in range(3):
            seeded_records.append(
                _record(
                    f"b{i}",
                    command="bench",
                    extra={"bench": {"rj_solves_per_sec": 1000.0 + i}},
                )
            )
        html = dashboard.render_dashboard(seeded_records)
        assert "Bench history" in html
        assert "rj_solves_per_sec" in html

    def test_markup_is_escaped(self, seeded_records):
        seeded_records[-1]["blocks"][0]["sb"] = "<img>"
        html = dashboard.render_dashboard(seeded_records)
        assert "<img>" not in html
        assert "&lt;img&gt;" in html

    def test_write_dashboard_creates_parents(self, tmp_path, seeded_records):
        out = tmp_path / "deep" / "dir" / "dash.html"
        written = dashboard.write_dashboard(seeded_records, out)
        assert written == out
        assert "gcc.sb_outlier" in out.read_text()


class TestDashboardCli:
    def test_obs_dashboard_end_to_end(self, tmp_path, capsys):
        """A real run's ledger renders to a self-contained artifact."""
        ldir = tmp_path / "ledger"
        assert main([
            "table3", "--scale", "8", "--max-ops", "20",
            "--machines", "GP2", "--no-triplewise", "--ledger", str(ldir),
        ]) == 0
        capsys.readouterr()
        out = tmp_path / "dash.html"
        assert main([
            "obs", "dashboard", "--ledger", str(ldir), "--out", str(out),
        ]) == 0
        assert "dashboard written to" in capsys.readouterr().out
        html = out.read_text()
        assert re.search(r"(src|href)\s*=", html, re.IGNORECASE) is None
        assert "<svg" in html and "Anomalies" in html

    def test_obs_dashboard_seeded_outlier_from_disk(self, tmp_path, capsys):
        ldir = tmp_path / "ledger"
        blocks = [_block(f"sb{i:02d}", gap=1.0 + 0.1 * i) for i in range(7)]
        blocks.append(_block("gcc.sb_outlier", gap=50.0))
        ledger.append_run(_record("seeded1", blocks=blocks), ldir)
        out = tmp_path / "dash.html"
        assert main([
            "obs", "dashboard", "--ledger", str(ldir), "--out", str(out),
        ]) == 0
        html = out.read_text()
        assert "loose-bound" in html and "gcc.sb_outlier@FS4" in html
