"""Profiling subsystem: span accounting math and both capture engines."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.profile import (
    SCHEMA_VERSION,
    ProfileConfig,
    ProfileSession,
    span_accounting,
)
from repro.obs.trace import span


def _busy(seconds: float) -> None:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        sum(i * i for i in range(50))


def _synthetic_events():
    # root(1.0s) > a(0.6s) > a.inner(0.2s); root > b(0.3s)
    return [
        {"event": "span", "id": 0, "name": "root", "t0": 0.0, "dur": 1.0,
         "depth": 0},
        {"event": "span", "id": 1, "name": "a", "t0": 0.0, "dur": 0.6,
         "depth": 1, "parent": 0},
        {"event": "span", "id": 2, "name": "b", "t0": 0.6, "dur": 0.3,
         "depth": 1, "parent": 0},
        {"event": "span", "id": 3, "name": "a.inner", "t0": 0.1, "dur": 0.2,
         "depth": 2, "parent": 1},
    ]


class TestSpanAccounting:
    def test_self_time_partitions_wall(self):
        acc = span_accounting(_synthetic_events())
        assert acc["wall_s"] == pytest.approx(1.0)
        by_name = {r["name"]: r for r in acc["spans"]}
        # self = dur - direct children
        assert by_name["root"]["self_s"] == pytest.approx(0.1)
        assert by_name["a"]["self_s"] == pytest.approx(0.4)
        assert by_name["a.inner"]["self_s"] == pytest.approx(0.2)
        assert by_name["b"]["self_s"] == pytest.approx(0.3)
        # attributed = everything below the root
        assert acc["attributed_percent"] == pytest.approx(90.0)
        total_self = sum(r["self_s"] for r in acc["spans"])
        assert total_self == pytest.approx(acc["wall_s"])

    def test_worker_spans_excluded_from_wall_partition(self):
        events = _synthetic_events() + [
            {"event": "span", "id": 4, "name": "unit.work", "t0": 0.2,
             "dur": 5.0, "depth": 2, "parent": 1,
             "attrs": {"origin": "worker", "unit": 0}},
        ]
        acc = span_accounting(events)
        # worker CPU time (another clock) must not distort main self times
        by_name = {r["name"]: r for r in acc["spans"]}
        assert "unit.work" not in by_name
        assert by_name["a"]["self_s"] == pytest.approx(0.4)
        assert acc["worker_spans"] == {"count": 1, "total_s": 5.0}

    def test_rows_sorted_by_self_time(self):
        rows = span_accounting(_synthetic_events())["spans"]
        selfs = [r["self_s"] for r in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_empty_events(self):
        acc = span_accounting([])
        assert acc["wall_s"] == 0.0
        assert acc["attributed_percent"] == 0.0
        assert acc["spans"] == []


class TestProfileConfig:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown profile engine"):
            ProfileConfig(engine="perf")

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            ProfileConfig(interval_s=0.0)


class TestProfileSession:
    def test_sampling_capture_attributes_the_hot_span(self):
        session = ProfileSession(ProfileConfig(interval_s=0.002))
        with session.capture("cmd.test"):
            with span("phase.hot"):
                _busy(0.08)
        report = session.report()
        assert report.engine == "sampling"
        assert report.root == "cmd.test"
        assert report.attributed_percent > 90.0
        names = {r["name"] for r in report.spans}
        assert {"cmd.test", "phase.hot"} <= names
        hot = report.hotspots
        assert hot["samples"] > 0
        assert hot["by_span"][0]["span"] == "phase.hot"
        assert hot["by_span"][0]["functions"]

    def test_cprofile_capture_builds_function_table(self):
        session = ProfileSession(ProfileConfig(engine="cprofile"))
        with session.capture("cmd.test"):
            with span("phase.hot"):
                sum(i * i for i in range(50_000))
        report = session.report()
        assert report.engine == "cprofile"
        functions = report.hotspots["functions"]
        assert functions
        assert all(
            isinstance(f["calls"], int) and f["self_s"] >= 0
            for f in functions
        )
        # deterministic engine: the generator expression must be visible
        assert any("genexpr" in f["where"] for f in functions)

    def test_report_save_round_trip(self, tmp_path):
        session = ProfileSession(ProfileConfig(interval_s=0.002))
        with session.capture("cmd.test"):
            with span("phase.a"):
                _busy(0.01)
        report = session.report()
        path = tmp_path / "hotspots.json"
        report.save(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA_VERSION
        assert loaded["root"] == "cmd.test"
        assert loaded["engine"] == "sampling"
        assert {r["name"] for r in loaded["spans"]} >= {"cmd.test", "phase.a"}

    def test_render_mentions_wall_and_attribution(self):
        session = ProfileSession(ProfileConfig(interval_s=0.002))
        with session.capture("cmd.test"):
            _busy(0.01)
        text = session.report().render()
        assert "profile (sampling): cmd.test" in text
        assert "attributed below the command span" in text
        assert "hotspots (" in text

    def test_report_before_capture_raises(self):
        with pytest.raises(RuntimeError):
            ProfileSession().report()

    def test_capture_uninstalls_tracer_on_exit(self):
        from repro.obs import trace as trace_mod

        session = ProfileSession(ProfileConfig(interval_s=0.002))
        with session.capture("cmd.test"):
            assert trace_mod.current() is session.tracer
        assert trace_mod.current() is None
