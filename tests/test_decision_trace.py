"""Golden tests for the Balance decision trace (paper Figure 2).

Section 2 of the paper walks Figure 2 through Balance on the 2-wide
machine: in cycle 0 only heavy branch 6 (weight 0.6) still *needs* op 4
issued (``NeedEach={4}``), so Balance dedicates a slot to it and fills
the second slot from the shared ``NeedOne`` pool; branch 3 retires in
cycle 2, branch 6 in cycle 3, for a weighted completion time of 3.6.
The recorder must reproduce exactly that narrative — these tests pin the
event stream, the text rendering, and the end-to-end CLI path
(``schedule --trace-out``) against it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.balance import balance_schedule
from repro.ir.examples import figure2
from repro.ir.serialize import superblock_to_dict
from repro.machine.machine import GP2
from repro.obs.decision_trace import (
    DecisionRecorder,
    decision_trace_to_dot,
    load_jsonl,
    render_decision_trace,
)

#: The paper's Figure 2 schedule on GP2: issue cycles for every op.
FIG2_ISSUE = {"0": 0, "1": 1, "2": 1, "3": 2, "4": 0, "5": 2, "6": 3}


@pytest.fixture
def fig2_events() -> list[dict]:
    recorder = DecisionRecorder()
    balance_schedule(figure2(), GP2, recorder=recorder)
    return recorder.events


def _events(events, kind, **match):
    return [
        e
        for e in events
        if e["event"] == kind and all(e.get(k) == v for k, v in match.items())
    ]


class TestGoldenFigure2:
    def test_begin_carries_branch_weights(self, fig2_events):
        (begin,) = _events(fig2_events, "begin")
        assert begin["superblock"] == "figure2"
        assert begin["machine"] == "GP2"
        assert begin["heuristic"] == "balance"
        assert begin["branches"] == [3, 6]
        assert begin["weights"] == {"3": 0.4, "6": 0.6}

    def test_cycle0_needs_match_paper_walkthrough(self, fig2_events):
        """Cycle 0: only branch 6 *needs* anything — op 4 each cycle."""
        (cycle0,) = _events(fig2_events, "cycle", cycle=0)
        b3, b6 = cycle0["branches"]["3"], cycle0["branches"]["6"]
        # Dynamic Early bounds are the branches' earliest completions.
        assert b3["early"] == 2
        assert b6["early"] == 3
        # Branch 3 has slack: nothing must issue this very cycle.
        assert b3["need_each"] == []
        assert b3["need_one"] == {}
        # Branch 6 is critical: op 4 in NeedEach, the gp pool in NeedOne.
        assert b6["need_each"] == [4]
        assert b6["need_one"] == {"gp": [0, 1, 2, 4]}

    def test_cycle0_selection_dedicates_slot_to_heavy_branch(self, fig2_events):
        first, second = _events(fig2_events, "selection", cycle=0)
        # First pass: heavy branch 6 selected, light branch 3 ignored
        # (no needs), and its NeedEach op 4 becomes TakeEach.
        assert first["selected"] == [6]
        assert first["ignored"] == [3]
        assert first["take_each"] == [4]
        assert first["rank"] == pytest.approx(0.6)
        # Second pass (remaining slot): both branches covered by the
        # shared gp pool {0,1,2}.
        assert second["selected"] == [6, 3]
        assert second["take_each"] == []
        assert second["take_one"] == {"gp": [0, 1, 2]}
        assert second["rank"] == pytest.approx(1.0)

    def test_issue_order_matches_figure2(self, fig2_events):
        issued = [(e["cycle"], e["op"]) for e in _events(fig2_events, "issue")]
        # Op 4 (branch 6's NeedEach) wins the first slot of cycle 0.
        assert issued[0] == (0, 4)
        assert sorted(issued) == sorted(
            (cycle, int(op)) for op, cycle in FIG2_ISSUE.items()
        )

    def test_end_event_reproduces_schedule_and_wct(self, fig2_events):
        (end,) = _events(fig2_events, "end")
        assert end["issue"] == FIG2_ISSUE
        assert end["wct"] == pytest.approx(3.6)
        assert end["length"] == 4

    def test_text_rendering_tells_the_story(self, fig2_events):
        text = render_decision_trace(fig2_events)
        assert (
            "figure2 on GP2 with balance (branch weights 3:0.400, 6:0.600)"
            in text
        )
        assert "branch 6: Early=3  NeedEach={4} NeedOne[gp]={0,1,2,4}" in text
        assert "select: selected={6} ignored={3} TakeEach={4} rank=0.6" in text
        assert "issue op 4 (gp)" in text
        assert "done: WCT=3.6000, length=4 cycles" in text
        assert "3@2" in text and "6@3" in text

    def test_dot_rendering_clusters_cycles(self, fig2_events):
        dot = decision_trace_to_dot(fig2_events)
        assert dot.startswith("digraph decision_trace")
        assert 'label="figure2 / GP2 / balance"' in dot
        for cycle in range(4):
            assert f'label="cycle {cycle}"' in dot
        assert 'op4 [label="op 4\\ngp"]' in dot
        assert "cycle0 -> cycle1" in dot


class TestCliTraceRoundTrip:
    def test_schedule_trace_out_is_the_golden_trace(self, tmp_path, capsys):
        """Acceptance path: ``schedule --trace-out`` emits the Figure 2 trace."""
        sb_file = tmp_path / "fig2.json"
        sb_file.write_text(json.dumps(superblock_to_dict(figure2())))
        trace_file = tmp_path / "t.jsonl"
        assert (
            main([
                "schedule", str(sb_file), "--machine", "GP2",
                "--heuristic", "balance", "--trace-out", str(trace_file),
            ])
            == 0
        )
        assert "trace written to" in capsys.readouterr().out
        events = load_jsonl(trace_file)
        (end,) = _events(events, "end")
        assert end["issue"] == FIG2_ISSUE
        assert end["wct"] == pytest.approx(3.6)
        (cycle0,) = _events(events, "cycle", cycle=0)
        assert cycle0["branches"]["6"]["need_each"] == [4]

    def test_recorder_jsonl_round_trip(self, tmp_path, fig2_events):
        recorder = DecisionRecorder()
        recorder.events = fig2_events
        path = tmp_path / "trace.jsonl"
        recorder.write_jsonl(path)
        assert load_jsonl(path) == fig2_events


# ---------------------------------------------------------------------------
# DOT rendering beyond the Figure 2 golden path
# ---------------------------------------------------------------------------
def _synthetic_events() -> list[dict]:
    """A trace with tradeoff events and a multi-branch selection partition."""
    return [
        {"event": "begin", "superblock": "synth", "machine": "GP2",
         "heuristic": "balance", "branches": [2, 5, 7],
         "weights": {"2": 0.2, "5": 0.3, "7": 0.5}},
        {"event": "selection", "cycle": 0, "selected": [7], "delayed": [5],
         "delayed_ok": [2], "ignored": [5], "take_each": [1],
         "take_one": {"gp": [3, 4]}, "rank": 1.5},
        {"event": "tradeoff", "cycle": 0, "branch": 2, "against": 7,
         "kind": "delayedOK", "bound": 3.25},
        {"event": "tradeoff", "cycle": 0, "branch": 5, "against": 7,
         "kind": "swap", "bound": 2.5},
        {"event": "issue", "cycle": 0, "op": 1, "rclass": "gp"},
        {"event": "selection", "cycle": 1, "selected": [2, 5], "delayed": [],
         "delayed_ok": [], "ignored": [], "take_each": [3],
         "take_one": {}, "rank": 0.5},
        {"event": "end", "wct": 2.9, "length": 3,
         "issue": {"2": 1, "5": 1, "7": 0}},
    ]


class TestDotTradeoffsAndPartitions:
    def test_tradeoff_events_become_note_nodes(self):
        dot = decision_trace_to_dot(_synthetic_events())
        assert (
            'tr0_0 [label="branch 2 vs 7\\ndelayedOK (bound 3.25)"' in dot
        )
        assert 'tr0_1 [label="branch 5 vs 7\\nswap (bound 2.5)"' in dot
        assert "shape=note" in dot
        assert "cycle0 -> tr0_0 [style=dotted" in dot
        assert "cycle0 -> tr0_1 [style=dotted" in dot

    def test_selection_label_carries_full_partition(self):
        dot = decision_trace_to_dot(_synthetic_events())
        assert "sel {7}" in dot
        assert "del {5}" in dot
        assert "delOK {2}" in dot
        assert "ign {5}" in dot

    def test_multi_branch_selection_renders(self):
        dot = decision_trace_to_dot(_synthetic_events())
        assert "sel {2,5}" in dot  # cycle 1 selects two branches at once

    def test_cycles_without_tradeoffs_have_no_note_nodes(self):
        dot = decision_trace_to_dot(_synthetic_events())
        assert "tr1_" not in dot


class TestLoadJsonlHardening:
    def test_truncated_line_names_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "begin"}\n{"event": "sp')
        with pytest.raises(ValueError, match=r":2:.*truncated"):
            load_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match=r":1:.*expected a JSON object"):
            load_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"event": "begin"}\n\n')
        assert load_jsonl(path) == [{"event": "begin"}]
