"""Tests for the branch-and-bound optimal scheduler."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.builder import SuperblockBuilder
from repro.ir.examples import figure2, figure3
from repro.machine.machine import FS4, GP1, GP2
from repro.schedulers.base import schedule
from repro.schedulers.optimal import SearchBudgetExceeded
from repro.schedulers.schedule import validate_schedule


class TestOptimal:
    def test_trivial_serial_case(self, single_exit_sb):
        s = schedule(single_exit_sb, GP1, "optimal")
        # add@0, load@1, add@3, jump@4.
        assert s.wct == pytest.approx(5.0)

    def test_figure2_optimum(self):
        s = schedule(figure2(), GP2, "optimal")
        assert s.issue[3] == 2 and s.issue[6] == 3

    def test_figure3_optimum(self):
        s = schedule(figure3(), GP2, "optimal")
        assert s.issue[9] == 5  # the resource-aware minimum

    def test_never_below_tightest_bound(self, tiny_corpus):
        checked = 0
        for sb in tiny_corpus:
            if sb.num_operations > 12:
                continue
            try:
                s = schedule(sb, GP2, "optimal", budget=200_000)
            except SearchBudgetExceeded:
                continue
            bound = BoundSuite(sb, GP2).compute().tightest
            assert s.wct >= bound - 1e-9
            checked += 1
        assert checked >= 3

    def test_no_heuristic_beats_optimal(self, tiny_corpus):
        for sb in tiny_corpus:
            if sb.num_operations > 11:
                continue
            try:
                opt = schedule(sb, FS4, "optimal", budget=200_000)
            except SearchBudgetExceeded:
                continue
            for name in ("cp", "sr", "dhasy", "balance", "best"):
                h = schedule(sb, FS4, name, validate=False)
                assert opt.wct <= h.wct + 1e-9, (sb.name, name)

    def test_budget_exceeded_raises(self):
        sb = (
            SuperblockBuilder("wide")
            .op("add").op("add").op("add").op("add")
            .op("add").op("add").op("add").op("add")
            .op("add").op("add").op("add").op("add")
            .last_exit(preds=list(range(12)))
        )
        with pytest.raises(SearchBudgetExceeded):
            schedule(sb, GP2, "optimal", budget=0)

    def test_result_is_valid_schedule(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "optimal")
        validate_schedule(two_exit_sb, GP2, s)
        assert s.stats["nodes"] > 0

    def test_respects_specialized_resources(self):
        # Two loads on FS4 (one mem unit) must serialize even though two
        # generic slots are free.
        sb = (
            SuperblockBuilder("mem")
            .op("load")
            .op("load")
            .last_exit(preds=[0, 1])
        )
        s = schedule(sb, FS4, "optimal")
        assert s.issue[0] != s.issue[1]
