"""Tests for the Balance scheduler's dynamic bound machinery."""

import pytest

from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.core.dynamic_bounds import DynamicBounds
from repro.ir.examples import figure2, figure3
from repro.machine.machine import GP2
from repro.machine.reservation import ReservationTable


def make_state(sb, machine):
    rc = early_rc(sb.graph, machine)
    late = {
        b: late_rc_for_branch(sb.graph, machine, b, rc[b])
        for b in sb.branches
    }
    anchor = {b: rc[b] for b in sb.branches}
    return DynamicBounds(sb, machine, rc, late, anchor)


class TestInitialRecompute:
    def test_initial_early_matches_static(self):
        sb = figure2()
        state = make_state(sb, GP2)
        state.recompute(0, {}, ReservationTable(GP2), list(sb.branches))
        rc = early_rc(sb.graph, GP2)
        for b in sb.branches:
            assert state.needs[b].early == rc[b]

    def test_fig2_needs(self):
        """Observation 1's needs: branch 3 needs one of {0,1,2}; branch 6
        needs op 4 (dependence) and one of its resource-critical ops."""
        sb = figure2()
        state = make_state(sb, GP2)
        state.recompute(0, {}, ReservationTable(GP2), list(sb.branches))
        n3 = state.needs[3]
        n6 = state.needs[6]
        # First decision of cycle 0: branch 3 still has one empty slot in
        # its {0,1,2}-by-cycle-1 ERC (3 ops, 4 slots), so no need yet.
        assert not n3.need_each
        assert "gp" not in n3.need_one
        # Branch 6: op 4 starts the squeezed chain -> needed this cycle.
        assert 4 in n6.need_each
        assert n6.has_needs

        # Second decision: op 4 consumed one cycle-0 slot; branch 3's ERC
        # is now tight and it needs one of {0, 1, 2} in this decision —
        # exactly the paper's Observation 1 analysis.
        table = ReservationTable(GP2)
        table.place(0, "gp")
        state.recompute(0, {4: 0}, table, list(sb.branches))
        assert state.needs[3].need_one.get("gp") == frozenset({0, 1, 2})

    def test_fig3_need_each_via_late_rc(self):
        """Observation 2: op 4 is needed in cycle 0 because of LateRC."""
        sb = figure3()
        state = make_state(sb, GP2)
        state.recompute(0, {}, ReservationTable(GP2), list(sb.branches))
        assert 4 in state.needs[9].need_each


class TestProgressUpdates:
    def test_scheduled_ops_fix_early(self):
        sb = figure2()
        state = make_state(sb, GP2)
        table = ReservationTable(GP2)
        table.place(0, "gp")
        table.place(0, "gp")
        issue = {0: 0, 4: 0}
        state.recompute(1, issue, table, list(sb.branches))
        assert state.early[0] == 0
        assert state.early[4] == 0
        # 5 consumes 4's value after 2 cycles.
        assert state.early[5] == 2

    def test_wasted_cycle_delays_branch(self):
        """Scheduling junk in cycle 0 delays the resource-bound branch."""
        sb = figure2()
        state = make_state(sb, GP2)
        table = ReservationTable(GP2)
        # Waste cycle 0 on ops 1 and 2 (help-based mistake): branch 6's
        # chain op 4 now cannot start before cycle 1.
        table.place(0, "gp")
        table.place(0, "gp")
        issue = {1: 0, 2: 0}
        state.recompute(1, issue, table, list(sb.branches))
        assert state.needs[6].early >= 4  # delayed from 3

    def test_need_each_excludes_scheduled_ops(self):
        sb = figure3()
        state = make_state(sb, GP2)
        table = ReservationTable(GP2)
        table.place(0, "gp")
        issue = {4: 0}
        state.recompute(0, issue, table, list(sb.branches))
        assert 4 not in state.needs[9].need_each

    def test_unscheduled_floor_is_current_cycle(self):
        sb = figure2()
        state = make_state(sb, GP2)
        state.recompute(5, {}, ReservationTable(GP2), list(sb.branches))
        assert all(
            state.early[v] >= 5 for v in range(sb.num_operations)
        )


class TestERCLevels:
    def test_erc_levels_recorded(self):
        sb = figure2()
        state = make_state(sb, GP2)
        state.recompute(0, {}, ReservationTable(GP2), list(sb.branches))
        levels = state.needs[6].erc_levels["gp"]
        assert levels, "branch 6 must have ERC levels"
        # Need counts increase with the deadline level.
        needs = [lv.need for lv in levels]
        assert needs == sorted(needs)

    def test_zero_empty_slot_detection(self):
        sb = figure2()
        state = make_state(sb, GP2)
        state.recompute(0, {}, ReservationTable(GP2), list(sb.branches))
        n6 = state.needs[6]
        tight = [lv for lv in n6.erc_levels["gp"] if lv.empty <= 0]
        assert bool(tight) == ("gp" in n6.need_one)
