"""Tests for the command line interface."""

import json

import pytest

from repro.cli import main
from repro.ir.serialize import superblock_to_dict
from repro.ir.examples import figure2


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(superblock_to_dict(figure2())))
    return str(path)


class TestCli:
    def test_corpus_summary(self, capsys):
        assert main(["corpus", "--scale", "12", "--max-ops", "24"]) == 0
        out = capsys.readouterr().out
        assert "superblocks: " in out

    def test_corpus_save(self, tmp_path, capsys):
        out_file = tmp_path / "c.jsonl"
        main(["corpus", "--scale", "12", "--out", str(out_file)])
        assert out_file.exists()
        assert "saved to" in capsys.readouterr().out

    def test_schedule_command(self, sb_file, capsys):
        main(["schedule", sb_file, "--machine", "GP2", "--heuristic", "balance"])
        out = capsys.readouterr().out
        assert "WCT" in out
        assert "branch 3" in out

    def test_bounds_command(self, sb_file, capsys):
        main(["bounds", sb_file, "--machine", "GP2"])
        out = capsys.readouterr().out
        assert "tightest" in out
        for name in ("CP", "LC", "PW"):
            assert name in out

    def test_examples_command(self, capsys):
        main(["examples"])
        out = capsys.readouterr().out
        assert "figure4" in out

    def test_table3_small(self, capsys):
        main([
            "table3", "--scale", "10", "--max-ops", "20",
            "--machines", "FS4", "--no-triplewise",
        ])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Balance" in out

    def test_table1_small(self, capsys):
        main([
            "table1", "--scale", "10", "--max-ops", "20",
            "--machines", "GP1,FS4", "--no-triplewise",
        ])
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure8_small(self, capsys):
        main(["figure8", "--scale", "16", "--max-ops", "20"])
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_schedule_gantt(self, sb_file, capsys):
        main(["schedule", sb_file, "--gantt"])
        out = capsys.readouterr().out
        assert "cycle" in out and "exits:" in out

    def test_cfg_command(self, capsys):
        main(["cfg", "--seed", "2", "--segments", "4"])
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "WCT=" in out

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        main([
            "report", "--scale", "10", "--max-ops", "16",
            "--no-costs", "--no-triplewise", "--out", str(out),
        ])
        text = out.read_text()
        assert "# Evaluation report" in text
        assert "Table 3" in text and "Figure 8" in text
        assert "written to" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_machine_rejected(self, sb_file):
        with pytest.raises(KeyError):
            main(["schedule", sb_file, "--machine", "XYZ"])
