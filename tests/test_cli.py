"""Tests for the command line interface."""

import json

import pytest

from repro.cli import main
from repro.ir.serialize import superblock_to_dict
from repro.ir.examples import figure2


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(superblock_to_dict(figure2())))
    return str(path)


class TestCli:
    def test_corpus_summary(self, capsys):
        assert main(["corpus", "--scale", "12", "--max-ops", "24"]) == 0
        out = capsys.readouterr().out
        assert "superblocks: " in out

    def test_corpus_save(self, tmp_path, capsys):
        out_file = tmp_path / "c.jsonl"
        main(["corpus", "--scale", "12", "--out", str(out_file)])
        assert out_file.exists()
        assert "saved to" in capsys.readouterr().out

    def test_schedule_command(self, sb_file, capsys):
        main(["schedule", sb_file, "--machine", "GP2", "--heuristic", "balance"])
        out = capsys.readouterr().out
        assert "WCT" in out
        assert "branch 3" in out

    def test_bounds_command(self, sb_file, capsys):
        main(["bounds", sb_file, "--machine", "GP2"])
        out = capsys.readouterr().out
        assert "tightest" in out
        for name in ("CP", "LC", "PW"):
            assert name in out

    def test_examples_command(self, capsys):
        main(["examples"])
        out = capsys.readouterr().out
        assert "figure4" in out

    def test_table3_small(self, capsys):
        main([
            "table3", "--scale", "10", "--max-ops", "20",
            "--machines", "FS4", "--no-triplewise",
        ])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Balance" in out

    def test_table1_small(self, capsys):
        main([
            "table1", "--scale", "10", "--max-ops", "20",
            "--machines", "GP1,FS4", "--no-triplewise",
        ])
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure8_small(self, capsys):
        main(["figure8", "--scale", "16", "--max-ops", "20"])
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_schedule_gantt(self, sb_file, capsys):
        main(["schedule", sb_file, "--gantt"])
        out = capsys.readouterr().out
        assert "cycle" in out and "exits:" in out

    def test_cfg_command(self, capsys):
        main(["cfg", "--seed", "2", "--segments", "4"])
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "WCT=" in out

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        main([
            "report", "--scale", "10", "--max-ops", "16",
            "--no-costs", "--no-triplewise", "--out", str(out),
        ])
        text = out.read_text()
        assert "# Evaluation report" in text
        assert "Table 3" in text and "Figure 8" in text
        assert "written to" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_machine_rejected(self, sb_file):
        with pytest.raises(KeyError):
            main(["schedule", sb_file, "--machine", "XYZ"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "balance-sched" in capsys.readouterr().out

    def test_list_machines(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--list-machines"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in ("GP1", "GP2", "GP4", "FS4", "FS6", "FS8", "FS4-NP"):
            assert name in out
        assert "blocking" in out  # FS4-NP lists its blocking occupancies


class TestCliObservability:
    def test_schedule_trace_and_metrics_out(self, sb_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        metrics_file = tmp_path / "m.json"
        assert (
            main([
                "schedule", sb_file, "--heuristic", "balance",
                "--trace-out", str(trace_file),
                "--metrics-out", str(metrics_file),
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "trace written to" in out and "metrics written to" in out
        events = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert events[0]["event"] == "begin"
        assert events[-1]["event"] == "end"
        metrics = json.loads(metrics_file.read_text())
        assert any(k.startswith("balance.") for k in metrics["counters"])

    def test_schedule_trace_out_non_balance_records_spans(
        self, sb_file, tmp_path
    ):
        trace_file = tmp_path / "t.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "cp",
            "--trace-out", str(trace_file),
        ])
        events = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert events and all(e["event"] == "span" for e in events)

    def test_bounds_metrics_out(self, sb_file, tmp_path):
        metrics_file = tmp_path / "m.json"
        main(["bounds", sb_file, "--metrics-out", str(metrics_file)])
        counters = json.loads(metrics_file.read_text())["counters"]
        assert any(k.startswith("lc.") for k in counters)

    def test_table_metrics_identical_across_jobs(self, tmp_path):
        """Acceptance: tables under --jobs 2 merge counters equal to serial."""
        base = [
            "table3", "--scale", "8", "--max-ops", "20",
            "--machines", "GP2", "--no-triplewise",
        ]
        serial, parallel = tmp_path / "m1.json", tmp_path / "m2.json"
        main(base + ["--jobs", "1", "--metrics-out", str(serial)])
        main(base + ["--jobs", "2", "--metrics-out", str(parallel)])
        c1 = json.loads(serial.read_text())["counters"]
        c2 = json.loads(parallel.read_text())["counters"]
        assert c1  # counters flowed at all
        assert c2 == c1

    def test_trace_subcommand_renders(self, sb_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "balance",
            "--trace-out", str(trace_file),
        ])
        capsys.readouterr()
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "figure2 on GP2 with balance" in out
        assert "done: WCT=" in out

    def test_trace_subcommand_dot(self, sb_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "balance",
            "--trace-out", str(trace_file),
        ])
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--dot"]) == 0
        assert "digraph decision_trace" in capsys.readouterr().out

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err


class TestCliVerify:
    def test_verify_small_run_passes(self, capsys):
        assert main(["verify", "--fuzz", "6", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "6 cases" in out
        assert "no soundness violations" in out

    def test_verify_family_restriction(self, capsys):
        assert main([
            "verify", "--fuzz", "4", "--family", "legality",
        ]) == 0
        assert "families legality" in capsys.readouterr().out

    def test_verify_unknown_family_rejected(self, capsys):
        assert main(["verify", "--fuzz", "2", "--family", "nope"]) == 1
        assert "unknown oracle family" in capsys.readouterr().err

    def test_verify_obs_outputs(self, tmp_path, capsys):
        trace_file = tmp_path / "verify.jsonl"
        metrics_file = tmp_path / "verify-metrics.json"
        assert main([
            "verify", "--fuzz", "3",
            "--trace-out", str(trace_file),
            "--metrics-out", str(metrics_file),
        ]) == 0
        events = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
        ]
        assert any(e.get("name") == "verify.case" for e in events)
        counters = json.loads(metrics_file.read_text())["counters"]
        assert counters.get("verify.cases") == 3


class TestCliTraceHardening:
    def test_empty_file_clear_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path)]) == 1
        assert "contains no events" in capsys.readouterr().err

    def test_truncated_file_names_the_line(self, tmp_path, capsys):
        path = tmp_path / "trunc.jsonl"
        path.write_text(
            '{"event":"span","id":0,"name":"a","t0":0,"dur":1,"depth":0}\n'
            '{"event":"sp'
        )
        assert main(["trace", str(path)]) == 1
        err = capsys.readouterr().err
        assert ":2:" in err and "truncated" in err

    def test_non_object_line_clear_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1,2]\n")
        assert main(["trace", str(path)]) == 1
        assert "expected a JSON object" in capsys.readouterr().err

    def test_span_event_missing_keys_clear_error(self, tmp_path, capsys):
        path = tmp_path / "damaged.jsonl"
        path.write_text('{"event":"span","name":"a"}\n')
        assert main(["trace", str(path)]) == 1
        err = capsys.readouterr().err
        assert "missing required key" in err and "t0" in err

    def test_mixed_span_and_decision_events_render(self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"event":"span","id":0,"name":"phase.x","t0":0.0,"dur":0.5,'
            '"depth":0}\n'
            '{"event":"issue","cycle":0,"op":4,"rclass":"gp"}\n'
        )
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase.x" in out and "issue op 4" in out


class TestCliProfile:
    def test_profile_wraps_a_command(self, capsys):
        assert main(["profile", "--interval-ms", "2", "examples"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out  # wrapped command output survives
        assert "profile (sampling): cmd.examples" in out
        assert "attributed below the command span" in out

    def test_profile_report_and_spans_out(self, sb_file, tmp_path, capsys):
        hotspots = tmp_path / "hot.json"
        spans = tmp_path / "spans.jsonl"
        assert main([
            "profile", "--out", str(hotspots), "--spans-out", str(spans),
            "bounds", sb_file,
        ]) == 0
        report = json.loads(hotspots.read_text())
        assert report["schema"] == 1
        assert report["root"] == "cmd.bounds"
        events = [
            json.loads(line) for line in spans.read_text().splitlines()
        ]
        assert any(e["name"] == "cmd.bounds" for e in events)

    def test_profile_cprofile_engine(self, sb_file, capsys):
        assert main([
            "profile", "--engine", "cprofile", "bounds", sb_file,
        ]) == 0
        assert "hotspots (cProfile" in capsys.readouterr().out

    def test_profile_without_command_rejected(self, capsys):
        assert main(["profile"]) == 1
        assert "nothing to profile" in capsys.readouterr().err

    def test_profile_cannot_nest(self, capsys):
        assert main(["profile", "profile", "examples"]) == 1
        assert "cannot wrap itself" in capsys.readouterr().err

    def test_profile_rejects_trace_out_in_wrapped(self, tmp_path, capsys):
        assert main([
            "profile", "examples", "--trace-out", str(tmp_path / "t.jsonl"),
        ]) == 1
        assert "--trace-out" in capsys.readouterr().err

    def test_profile_rejects_unparseable_wrapped(self, capsys):
        assert main(["profile", "frobnicate"]) == 1
        assert "could not parse" in capsys.readouterr().err

    def test_profile_quick_shorthand_on_corpus_commands(self, capsys):
        # table1 has no --quick of its own; the wrapper translates it
        assert main([
            "profile", "table1", "--quick", "--no-triplewise",
            "--machines", "GP2,FS4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "profile (sampling)" in out

    def test_profile_out_shorthand_flag(self, sb_file, tmp_path, capsys):
        prof = tmp_path / "prof.json"
        assert main(["bounds", sb_file, "--profile-out", str(prof)]) == 0
        assert "profile report written to" in capsys.readouterr().out
        assert json.loads(prof.read_text())["root"] == "cmd.bounds"

    def test_profile_out_conflicts_with_trace_out(
        self, sb_file, tmp_path, capsys
    ):
        assert main([
            "bounds", sb_file,
            "--profile-out", str(tmp_path / "p.json"),
            "--trace-out", str(tmp_path / "t.jsonl"),
        ]) == 1
        assert "cannot be combined" in capsys.readouterr().err


class TestCliExport:
    @pytest.fixture
    def span_file(self, sb_file, tmp_path):
        path = tmp_path / "spans.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "cp",
            "--trace-out", str(path),
        ])
        return str(path)

    def test_chrome_trace_export_validates_and_loads(
        self, span_file, tmp_path, capsys
    ):
        out = tmp_path / "chrome.json"
        assert main([
            "export", "chrome-trace", span_file, "--out", str(out),
        ]) == 0
        assert "chrome trace written to" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        assert all(
            e["name"] and e["ts"] >= 0 and e["dur"] >= 0 for e in complete
        )

    def test_chrome_trace_to_stdout(self, span_file, capsys):
        assert main(["export", "chrome-trace", span_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "traceEvents" in doc

    def test_chrome_trace_rejects_decision_trace(
        self, sb_file, tmp_path, capsys
    ):
        path = tmp_path / "decisions.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "balance",
            "--trace-out", str(path),
        ])
        capsys.readouterr()
        assert main(["export", "chrome-trace", str(path)]) == 1
        assert "no span events" in capsys.readouterr().err

    def test_chrome_trace_missing_file(self, tmp_path, capsys):
        assert main([
            "export", "chrome-trace", str(tmp_path / "nope.jsonl"),
        ]) == 1
        assert "not found" in capsys.readouterr().err

    def test_prometheus_export(self, sb_file, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        main(["bounds", sb_file, "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["export", "prometheus", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE " in out
        assert "_total{" in out

    def test_prometheus_rejects_non_metrics_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        assert main(["export", "prometheus", str(path)]) == 1
        assert "does not look like" in capsys.readouterr().err


class TestCliBenchAnalytics:
    BASE = {
        "rj_solves_per_sec": {"value": 1000.0, "unit": "solves/s",
                              "seed": 1999},
        "table1_seconds": {"value": 2.0, "unit": "s", "seed": 1999},
        "table1_jobs2_speedup": {"value": 1.7, "unit": "x", "seed": 1999},
    }

    def _write(self, tmp_path, name, **overrides):
        payload = json.loads(json.dumps(self.BASE))
        for metric, value in overrides.items():
            payload[metric]["value"] = value
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_compare_flags_injected_25_percent_slowdown(
        self, tmp_path, capsys
    ):
        base = self._write(tmp_path, "base.json")
        slow = self._write(tmp_path, "slow.json", table1_seconds=2.5)
        assert main(["bench", "--compare", base, slow]) == 1
        err = capsys.readouterr().err
        assert "REGRESSED" in err and "table1_seconds" in err

    def test_compare_passes_within_tolerance(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json")
        ok = self._write(tmp_path, "ok.json", table1_seconds=2.2)
        assert main(["bench", "--compare", base, ok]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_tolerance_flag(self, tmp_path):
        base = self._write(tmp_path, "base.json")
        slow = self._write(tmp_path, "slow.json", table1_seconds=2.5)
        assert main([
            "bench", "--compare", base, slow, "--tolerance", "0.30",
        ]) == 0

    def test_compare_missing_file(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json")
        assert main([
            "bench", "--compare", base, str(tmp_path / "nope.json"),
        ]) == 1
        assert "not found" in capsys.readouterr().err

    def test_trend_renders_history(self, tmp_path, capsys):
        from repro.obs import trend

        history = tmp_path / "hist.jsonl"
        for i in range(3):
            trend.append_record(
                trend.make_record(
                    {"table1_seconds": {"value": 2.0 + 0.1 * i, "unit": "s",
                                        "seed": 1999}},
                    timestamp=float(i), sha=f"sha{i}",
                ),
                history,
            )
        assert main(["bench", "--trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "3 record(s)" in out and "table1_seconds" in out

    def test_trend_without_history_clear_error(self, tmp_path, capsys):
        assert main([
            "bench", "--trend", "--history", str(tmp_path / "none.jsonl"),
        ]) == 1
        assert "no bench history" in capsys.readouterr().err

    def test_quick_bench_appends_history_record(self, tmp_path, capsys):
        """Acceptance: every bench run adds one record to the history."""
        from repro.obs import trend

        history = tmp_path / "hist.jsonl"
        assert main([
            "bench", "--quick", "--no-scaling",
            "--history", str(history),
        ]) == 0
        assert "history appended to" in capsys.readouterr().out
        records = trend.load_history(history)
        assert len(records) == 1
        assert records[0]["label"] == "quick"
        assert records[0]["schema"] == trend.SCHEMA_VERSION
        assert "table1_seconds" in records[0]["metrics"]
        assert records[0]["counters"]  # observability counters ride along


class TestCliDispatchGauges:
    def test_dispatch_stats_land_in_metrics_out(self, tmp_path, capsys):
        """Satellite: DispatchStats surface as dispatch.* gauges (gauges,
        not counters, so counter bit-identity across --jobs holds)."""
        metrics = tmp_path / "m.json"
        assert main([
            "table3", "--scale", "8", "--max-ops", "20",
            "--machines", "GP2", "--no-triplewise",
            "--jobs", "2", "--metrics-out", str(metrics),
        ]) == 0
        data = json.loads(metrics.read_text())
        gauges = data["gauges"]
        assert gauges["dispatch.jobs"] == 2.0
        assert gauges["dispatch.units"] > 0
        assert any(k.startswith("dispatch.mode.") for k in gauges)
        assert not any(
            k.startswith("dispatch.") for k in data["counters"]
        )

    def test_dispatch_gauges_export_to_prometheus(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        main([
            "table3", "--scale", "8", "--max-ops", "20",
            "--machines", "GP2", "--no-triplewise",
            "--jobs", "2", "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert main(["export", "prometheus", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "repro_dispatch_jobs" in out
        assert "# TYPE repro_dispatch_jobs gauge" in out


class TestCliObsLedger:
    def _seed_ledger(self, tmp_path, capsys):
        ldir = tmp_path / "ledger"
        for _ in range(2):
            assert main([
                "table3", "--scale", "8", "--max-ops", "20",
                "--machines", "GP2", "--no-triplewise",
                "--ledger", str(ldir),
            ]) == 0
        capsys.readouterr()
        return ldir

    def test_obs_summary_lists_runs(self, tmp_path, capsys):
        ldir = self._seed_ledger(tmp_path, capsys)
        assert main(["obs", "summary", "--ledger", str(ldir)]) == 0
        out = capsys.readouterr().out
        assert "ledger: 2 run(s)" in out
        assert "table3" in out

    def test_obs_blocks_renders_detail(self, tmp_path, capsys):
        ldir = self._seed_ledger(tmp_path, capsys)
        assert main([
            "obs", "blocks", "--ledger", str(ldir), "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "block row(s), top 3 by gap" in out
        assert "GP2" in out

    def test_obs_anomalies_runs_clean_history(self, tmp_path, capsys):
        ldir = self._seed_ledger(tmp_path, capsys)
        assert main(["obs", "anomalies", "--ledger", str(ldir)]) == 0
        out = capsys.readouterr().out
        # two identical runs: whatever is flagged must be block-scope only
        assert "wall-regression" not in out

    def test_obs_diff_compares_runs(self, tmp_path, capsys):
        ldir = self._seed_ledger(tmp_path, capsys)
        assert main([
            "obs", "diff", "--ledger", str(ldir), "--", "-2", "-1",
        ]) == 0
        out = capsys.readouterr().out
        assert "wall:" in out
        assert "shared" in out

    def test_obs_without_directory_clear_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert main(["obs", "summary"]) == 1
        assert "no ledger directory" in capsys.readouterr().err

    def test_obs_missing_ledger_clear_error(self, tmp_path, capsys):
        assert main([
            "obs", "summary", "--ledger", str(tmp_path / "nowhere"),
        ]) == 1
        assert "no ledger at" in capsys.readouterr().err

    _OBS_SUBCOMMANDS = (
        ["summary"],
        ["blocks"],
        ["anomalies"],
        ["diff", "-2", "-1"],
        ["dashboard"],
    )

    @pytest.mark.parametrize(
        "subcmd", _OBS_SUBCOMMANDS, ids=lambda c: c[0]
    )
    def test_obs_missing_dir_one_line_error(self, subcmd, tmp_path, capsys):
        """Every obs subcommand diagnoses a missing ledger dir, no traceback."""
        assert main(
            ["obs", *subcmd, "--ledger", str(tmp_path / "nowhere")]
        ) == 1
        err = capsys.readouterr().err
        assert "no ledger at" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize(
        "subcmd", _OBS_SUBCOMMANDS, ids=lambda c: c[0]
    )
    def test_obs_empty_dir_one_line_error(self, subcmd, tmp_path, capsys):
        """A directory with no ledger file gets the same diagnostic."""
        ldir = tmp_path / "ledger"
        ldir.mkdir()
        assert main(["obs", *subcmd, "--ledger", str(ldir)]) == 1
        err = capsys.readouterr().err
        assert "no ledger at" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize(
        "subcmd", _OBS_SUBCOMMANDS, ids=lambda c: c[0]
    )
    def test_obs_ledger_path_is_a_file(self, subcmd, tmp_path, capsys):
        """--ledger pointing at a regular file is an error, not a traceback."""
        not_a_dir = tmp_path / "ledger"
        not_a_dir.write_text("oops\n")
        assert main(["obs", *subcmd, "--ledger", str(not_a_dir)]) == 1
        err = capsys.readouterr().err
        assert "cannot read ledger at" in err
        assert "Traceback" not in err

    def test_obs_corrupt_ledger_names_the_line(self, tmp_path, capsys):
        from repro.obs import ledger as ledger_mod

        ldir = tmp_path / "ledger"
        ledger_mod.append_run(
            {"schema": 1, "run_id": "r0", "timestamp": 0.0,
             "command": "table1"},
            ldir,
        )
        with ledger_mod.ledger_path(ldir).open("a") as fh:
            fh.write("{broken\n")
        assert main(["obs", "summary", "--ledger", str(ldir)]) == 1
        err = capsys.readouterr().err
        assert ":2:" in err and "not valid JSON" in err

    def test_obs_schema_skew_clear_error(self, tmp_path, capsys):
        from repro.obs import ledger as ledger_mod

        ldir = tmp_path / "ledger"
        ledger_mod.append_run(
            {"schema": ledger_mod.SCHEMA_VERSION + 1, "run_id": "r0",
             "timestamp": 0.0, "command": "table1"},
            ldir,
        )
        assert main(["obs", "summary", "--ledger", str(ldir)]) == 1
        assert "newer than this code" in capsys.readouterr().err

    def test_obs_unknown_run_reference_clear_error(self, tmp_path, capsys):
        ldir = self._seed_ledger(tmp_path, capsys)
        assert main([
            "obs", "blocks", "--ledger", str(ldir), "--run", "zzz",
        ]) == 1
        assert "no run matching" in capsys.readouterr().err


class TestCliBenchCheckTrendContext:
    def _fake_result(self, rate: float):
        from repro.perf.bench import BenchResult

        result = BenchResult()
        result.add("rj_solves_per_sec", rate, "solves/s", 1999)
        return result

    def test_check_failure_quotes_metric_history(
        self, tmp_path, capsys, monkeypatch
    ):
        """Satellite: a --check failure appends the offending metric's
        trend line so the log says cliff-or-drift without extra digging."""
        from repro.obs import trend
        from repro.perf import bench as bench_mod

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "rj_solves_per_sec": {"value": 1000.0, "unit": "solves/s",
                                  "seed": 1999},
        }))
        history = tmp_path / "hist.jsonl"
        for i in range(3):
            trend.append_record(
                trend.make_record(
                    {"rj_solves_per_sec": {"value": 1000.0 - 100.0 * i,
                                           "unit": "solves/s", "seed": 1999}},
                    timestamp=float(i), sha=f"sha{i}",
                ),
                history,
            )
        monkeypatch.setattr(
            bench_mod, "run_bench", lambda config: self._fake_result(500.0)
        )
        monkeypatch.setattr(bench_mod, "check_speedup_floors", lambda m: [])
        assert main([
            "bench", "--check", str(baseline),
            "--history", str(history), "--no-history",
        ]) == 1
        err = capsys.readouterr().err
        assert "PERF REGRESSION" in err
        assert "recent history:" in err
        assert "rj_solves_per_sec" in err.split("recent history:")[1]
        assert "1000 -> 800 solves/s" in err

    def test_check_failure_without_history_omits_section(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.perf import bench as bench_mod

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "rj_solves_per_sec": {"value": 1000.0, "unit": "solves/s",
                                  "seed": 1999},
        }))
        monkeypatch.setattr(
            bench_mod, "run_bench", lambda config: self._fake_result(500.0)
        )
        monkeypatch.setattr(bench_mod, "check_speedup_floors", lambda m: [])
        assert main([
            "bench", "--check", str(baseline),
            "--history", str(tmp_path / "none.jsonl"), "--no-history",
        ]) == 1
        err = capsys.readouterr().err
        assert "PERF REGRESSION" in err
        assert "recent history:" not in err
