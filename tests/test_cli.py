"""Tests for the command line interface."""

import json

import pytest

from repro.cli import main
from repro.ir.serialize import superblock_to_dict
from repro.ir.examples import figure2


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(superblock_to_dict(figure2())))
    return str(path)


class TestCli:
    def test_corpus_summary(self, capsys):
        assert main(["corpus", "--scale", "12", "--max-ops", "24"]) == 0
        out = capsys.readouterr().out
        assert "superblocks: " in out

    def test_corpus_save(self, tmp_path, capsys):
        out_file = tmp_path / "c.jsonl"
        main(["corpus", "--scale", "12", "--out", str(out_file)])
        assert out_file.exists()
        assert "saved to" in capsys.readouterr().out

    def test_schedule_command(self, sb_file, capsys):
        main(["schedule", sb_file, "--machine", "GP2", "--heuristic", "balance"])
        out = capsys.readouterr().out
        assert "WCT" in out
        assert "branch 3" in out

    def test_bounds_command(self, sb_file, capsys):
        main(["bounds", sb_file, "--machine", "GP2"])
        out = capsys.readouterr().out
        assert "tightest" in out
        for name in ("CP", "LC", "PW"):
            assert name in out

    def test_examples_command(self, capsys):
        main(["examples"])
        out = capsys.readouterr().out
        assert "figure4" in out

    def test_table3_small(self, capsys):
        main([
            "table3", "--scale", "10", "--max-ops", "20",
            "--machines", "FS4", "--no-triplewise",
        ])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Balance" in out

    def test_table1_small(self, capsys):
        main([
            "table1", "--scale", "10", "--max-ops", "20",
            "--machines", "GP1,FS4", "--no-triplewise",
        ])
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure8_small(self, capsys):
        main(["figure8", "--scale", "16", "--max-ops", "20"])
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_schedule_gantt(self, sb_file, capsys):
        main(["schedule", sb_file, "--gantt"])
        out = capsys.readouterr().out
        assert "cycle" in out and "exits:" in out

    def test_cfg_command(self, capsys):
        main(["cfg", "--seed", "2", "--segments", "4"])
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "WCT=" in out

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        main([
            "report", "--scale", "10", "--max-ops", "16",
            "--no-costs", "--no-triplewise", "--out", str(out),
        ])
        text = out.read_text()
        assert "# Evaluation report" in text
        assert "Table 3" in text and "Figure 8" in text
        assert "written to" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_machine_rejected(self, sb_file):
        with pytest.raises(KeyError):
            main(["schedule", sb_file, "--machine", "XYZ"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "balance-sched" in capsys.readouterr().out

    def test_list_machines(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--list-machines"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in ("GP1", "GP2", "GP4", "FS4", "FS6", "FS8", "FS4-NP"):
            assert name in out
        assert "blocking" in out  # FS4-NP lists its blocking occupancies


class TestCliObservability:
    def test_schedule_trace_and_metrics_out(self, sb_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        metrics_file = tmp_path / "m.json"
        assert (
            main([
                "schedule", sb_file, "--heuristic", "balance",
                "--trace-out", str(trace_file),
                "--metrics-out", str(metrics_file),
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "trace written to" in out and "metrics written to" in out
        events = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert events[0]["event"] == "begin"
        assert events[-1]["event"] == "end"
        metrics = json.loads(metrics_file.read_text())
        assert any(k.startswith("balance.") for k in metrics["counters"])

    def test_schedule_trace_out_non_balance_records_spans(
        self, sb_file, tmp_path
    ):
        trace_file = tmp_path / "t.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "cp",
            "--trace-out", str(trace_file),
        ])
        events = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert events and all(e["event"] == "span" for e in events)

    def test_bounds_metrics_out(self, sb_file, tmp_path):
        metrics_file = tmp_path / "m.json"
        main(["bounds", sb_file, "--metrics-out", str(metrics_file)])
        counters = json.loads(metrics_file.read_text())["counters"]
        assert any(k.startswith("lc.") for k in counters)

    def test_table_metrics_identical_across_jobs(self, tmp_path):
        """Acceptance: tables under --jobs 2 merge counters equal to serial."""
        base = [
            "table3", "--scale", "8", "--max-ops", "20",
            "--machines", "GP2", "--no-triplewise",
        ]
        serial, parallel = tmp_path / "m1.json", tmp_path / "m2.json"
        main(base + ["--jobs", "1", "--metrics-out", str(serial)])
        main(base + ["--jobs", "2", "--metrics-out", str(parallel)])
        c1 = json.loads(serial.read_text())["counters"]
        c2 = json.loads(parallel.read_text())["counters"]
        assert c1  # counters flowed at all
        assert c2 == c1

    def test_trace_subcommand_renders(self, sb_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "balance",
            "--trace-out", str(trace_file),
        ])
        capsys.readouterr()
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "figure2 on GP2 with balance" in out
        assert "done: WCT=" in out

    def test_trace_subcommand_dot(self, sb_file, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main([
            "schedule", sb_file, "--heuristic", "balance",
            "--trace-out", str(trace_file),
        ])
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--dot"]) == 0
        assert "digraph decision_trace" in capsys.readouterr().out

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err


class TestCliVerify:
    def test_verify_small_run_passes(self, capsys):
        assert main(["verify", "--fuzz", "6", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "6 cases" in out
        assert "no soundness violations" in out

    def test_verify_family_restriction(self, capsys):
        assert main([
            "verify", "--fuzz", "4", "--family", "legality",
        ]) == 0
        assert "families legality" in capsys.readouterr().out

    def test_verify_unknown_family_rejected(self, capsys):
        assert main(["verify", "--fuzz", "2", "--family", "nope"]) == 1
        assert "unknown oracle family" in capsys.readouterr().err

    def test_verify_obs_outputs(self, tmp_path, capsys):
        trace_file = tmp_path / "verify.jsonl"
        metrics_file = tmp_path / "verify-metrics.json"
        assert main([
            "verify", "--fuzz", "3",
            "--trace-out", str(trace_file),
            "--metrics-out", str(metrics_file),
        ]) == 0
        events = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
        ]
        assert any(e.get("name") == "verify.case" for e in events)
        counters = json.loads(metrics_file.read_text())["counters"]
        assert counters.get("verify.cases") == 3
