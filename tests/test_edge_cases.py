"""Edge-case battery across the whole pipeline.

Degenerate superblocks (single op, branch-only, zero-probability exits,
latency-0 edges), tiny machines, and unusual weights — each runs through
bounds and schedulers end to end.
"""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import FS4, GP1, GP2, MachineConfig
from repro.schedulers.base import schedule, scheduler_names
from repro.schedulers.schedule import validate_schedule

HEURISTICS = ("cp", "sr", "gstar", "dhasy", "help", "balance", "adaptive")


def branch_only_sb():
    """Just two branches, no computation at all."""
    return (
        SuperblockBuilder("branches")
        .exit(0.5)
        .last_exit()
    )


def single_op_sb():
    return SuperblockBuilder("one").last_exit()


def zero_prob_side_exit_sb():
    """A side exit that is never taken (profile says so)."""
    return (
        SuperblockBuilder("deadexit")
        .op("add")
        .exit(0.0, preds=[0])
        .op("add")
        .last_exit(preds=[2])
    )


def zero_latency_edge_sb():
    """A latency-0 edge: consumer may issue in the same cycle."""
    return (
        SuperblockBuilder("lat0")
        .op("add")
        .op("add", preds={0: 0})
        .last_exit(preds=[1])
    )


ALL_EDGE_CASES = [
    branch_only_sb,
    single_op_sb,
    zero_prob_side_exit_sb,
    zero_latency_edge_sb,
]


class TestDegenerateSuperblocks:
    @pytest.mark.parametrize("factory", ALL_EDGE_CASES, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("name", HEURISTICS)
    def test_every_heuristic_handles_it(self, factory, name):
        sb = factory()
        for machine in (GP1, GP2, FS4):
            s = schedule(sb, machine, name)
            validate_schedule(sb, machine, s)

    @pytest.mark.parametrize("factory", ALL_EDGE_CASES, ids=lambda f: f.__name__)
    def test_bounds_computable_and_sound(self, factory):
        sb = factory()
        for machine in (GP1, FS4):
            res = BoundSuite(sb, machine).compute()
            opt = schedule(sb, machine, "optimal")
            assert res.tightest <= opt.wct + 1e-9

    def test_single_op_bounds(self):
        sb = single_op_sb()
        res = BoundSuite(sb, GP1).compute()
        assert res.tightest == pytest.approx(1.0)  # issue 0 + l_br

    def test_zero_latency_edge_same_cycle(self):
        sb = zero_latency_edge_sb()
        s = schedule(sb, GP2, "optimal")
        assert s.issue[1] == s.issue[0]  # same cycle is legal and optimal

    def test_branch_only_ordering(self):
        sb = branch_only_sb()
        s = schedule(sb, GP2, "balance")
        assert s.issue[1] >= s.issue[0] + 1  # control edge


class TestUnusualMachines:
    def test_minimal_specialized_machine(self):
        tiny = MachineConfig(
            name="tiny",
            units={"int": 1, "mem": 1, "float": 1, "branch": 1},
        )
        sb = zero_prob_side_exit_sb()
        s = schedule(sb, tiny, "balance")
        validate_schedule(sb, tiny, s)

    def test_very_wide_machine_hits_dependence_bound(self):
        wide = MachineConfig(name="wide16", units={"gp": 16})
        sb = zero_prob_side_exit_sb()
        res = BoundSuite(sb, wide).compute()
        s = schedule(sb, wide, "balance")
        assert s.wct == pytest.approx(res.wct["CP"])  # resources never bind


class TestRegistryCompleteness:
    def test_all_registered_schedulers_run(self, two_exit_sb):
        for name in scheduler_names():
            if name in ("optimal", "ilp"):
                continue  # exact solvers covered elsewhere (size guards)
            s = schedule(two_exit_sb, GP2, name)
            validate_schedule(two_exit_sb, GP2, s)
