"""Tests for the adaptive scheduler and the ASCII visualizer."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.examples import figure1, figure2
from repro.machine.machine import FS4, FS4_NP, GP2
from repro.schedulers.base import schedule
from repro.schedulers.schedule import validate_schedule
from repro.schedulers.visualize import gantt, unit_streams


class TestAdaptive:
    def test_uses_dhasy_when_optimal(self, tiny_corpus):
        hits = 0
        for sb in tiny_corpus.superblocks[:10]:
            s = schedule(sb, GP2, "adaptive")
            validate_schedule(sb, GP2, s)
            assert s.heuristic == "adaptive"
            if not s.stats["fallback"]:
                hits += 1
        assert hits > 0  # DHASY alone suffices somewhere

    def test_falls_back_on_figure1(self):
        """DHASY misses the Figure 1 optimum, so Balance must take over."""
        sb = figure1()
        s = schedule(sb, GP2, "adaptive")
        assert s.stats["fallback"]
        assert s.wct == pytest.approx(7.5)

    def test_never_worse_than_dhasy(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:10]:
            a = schedule(sb, FS4, "adaptive", validate=False)
            d = schedule(sb, FS4, "dhasy", validate=False)
            assert a.wct <= d.wct + 1e-9

    def test_reuses_provided_suite(self, two_exit_sb):
        suite = BoundSuite(two_exit_sb, GP2, include_triplewise=False)
        s = schedule(two_exit_sb, GP2, "adaptive", suite=suite)
        assert s.wct >= suite.compute().tightest - 1e-9


class TestGantt:
    def test_contains_all_ops_and_exits(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        text = gantt(two_exit_sb, GP2, s)
        assert "cycle" in text
        assert "exits:" in text
        assert f"WCT = {s.wct:.4f}" in text
        for b in two_exit_sb.branches:
            assert f"br{b}" in text

    def test_one_row_per_unit(self, two_exit_sb):
        s = schedule(two_exit_sb, FS4, "balance")
        text = gantt(two_exit_sb, FS4, s)
        # FS4 has 4 units -> 4 lane rows (+ header + exits + WCT line).
        lane_rows = [
            line for line in text.splitlines()
            if line.split() and line.split()[0] in FS4.resource_classes
        ]
        assert len(lane_rows) == 4

    def test_blocking_unit_marks_occupancy(self):
        from repro.ir.builder import SuperblockBuilder

        sb = (
            SuperblockBuilder("div")
            .op("fdiv")
            .last_exit(preds=[0])
        )
        s = schedule(sb, FS4_NP, "balance")
        text = gantt(sb, FS4_NP, s)
        assert "~fdiv0" in text  # the occupied tail of the divider window

    def test_unit_streams(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        streams = unit_streams(two_exit_sb, GP2, s)
        assert sum(len(v) for v in streams.values()) == two_exit_sb.num_operations
        for stream in streams.values():
            cycles = [t for t, _ in stream]
            assert cycles == sorted(cycles)
