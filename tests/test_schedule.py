"""Unit tests for the Schedule object and its validator."""

import pytest

from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import FS4, FS4_NP, GP2
from repro.schedulers.schedule import (
    Schedule,
    ScheduleError,
    make_schedule,
    validate_schedule,
)


def valid_issue(two_exit_sb):
    return {0: 0, 1: 1, 2: 1, 3: 2, 4: 0, 5: 2, 6: 3}


class TestMakeSchedule:
    def test_wct_computed(self, two_exit_sb):
        s = make_schedule(two_exit_sb, GP2, "test", valid_issue(two_exit_sb))
        assert s.wct == pytest.approx(0.3 * 3 + 0.7 * 4)
        assert s.length == 4
        assert s.heuristic == "test"

    def test_branch_cycles(self, two_exit_sb):
        s = make_schedule(two_exit_sb, GP2, "test", valid_issue(two_exit_sb))
        assert s.branch_cycles(two_exit_sb) == {3: 2, 6: 3}

    def test_as_rows_renders_all_cycles(self, two_exit_sb):
        s = make_schedule(two_exit_sb, GP2, "test", valid_issue(two_exit_sb))
        rows = s.as_rows(two_exit_sb, GP2)
        assert len(rows) == s.length
        assert rows[0][0] == "0"


class TestValidation:
    def test_missing_operation_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        del issue[5]
        with pytest.raises(ScheduleError, match="not scheduled"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_dependence_violation_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[5] = 1  # needs op 4 + latency 2
        with pytest.raises(ScheduleError, match="dependence"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_resource_violation_detected(self, two_exit_sb):
        issue = dict.fromkeys(range(3), 0)
        issue.update({3: 1, 4: 0, 5: 2, 6: 3})  # cycle 0 has 4 ops on GP2
        with pytest.raises(ScheduleError, match="units"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_negative_cycle_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[0] = -1
        with pytest.raises(ScheduleError, match="negative"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_per_class_capacity_checked(self, single_exit_sb):
        # ops: add, load, add, jump — serial chain; pack two loads... here
        # simply verify a valid serial schedule passes on FS4.
        issue = {0: 0, 1: 1, 2: 3, 3: 4}
        s = make_schedule(single_exit_sb, FS4, "t", issue)
        validate_schedule(single_exit_sb, FS4, s)

    def test_validate_false_skips_checks(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[5] = 0  # invalid, but validation disabled
        s = make_schedule(two_exit_sb, GP2, "t", issue, validate=False)
        assert isinstance(s, Schedule)

    def test_unknown_operation_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[99] = 0
        with pytest.raises(ScheduleError, match="unknown operations"):
            make_schedule(two_exit_sb, GP2, "t", issue)


def _chainless_two_exit():
    """Two exits with no explicit control edge between them."""
    from repro.ir.depgraph import DependenceGraph
    from repro.ir.operation import Operation, opcode
    from repro.ir.superblock import Superblock

    graph = DependenceGraph()
    graph.add_operation(
        Operation(index=0, opcode=opcode("branch"), exit_prob=0.4)
    )
    graph.add_operation(
        Operation(index=1, opcode=opcode("jump"), exit_prob=0.6, block=1)
    )
    graph.freeze()
    return Superblock(name="chainless", graph=graph)


class TestBranchLegality:
    def test_branch_order_violation_detected(self):
        # Builder-made superblocks carry explicit control edges, so the
        # dependence check subsumes exit order there. The branch-order
        # rule exists for hand-built graphs without the control chain —
        # exits must still issue in program order.
        sb = _chainless_two_exit()
        with pytest.raises(ScheduleError, match="branch order"):
            make_schedule(sb, GP2, "t", {0: 2, 1: 0})

    def test_branches_separated_by_latency_pass(self, two_exit_sb):
        issue = {0: 0, 1: 1, 2: 1, 3: 3, 4: 0, 5: 2, 6: 4}
        s = make_schedule(two_exit_sb, GP2, "t", issue)
        validate_schedule(two_exit_sb, GP2, s)

    def test_chainless_branches_in_order_pass(self):
        sb = _chainless_two_exit()
        s = make_schedule(sb, GP2, "t", {0: 0, 1: 1})
        validate_schedule(sb, GP2, s)

    def test_op_past_last_exit_detected(self):
        # An op that is live past no exit at all (no consumers) can only
        # violate the liveness rule, never a dependence: control leaves at
        # issue[last] + l_br and the op would execute on no path.
        from repro.ir.depgraph import DependenceGraph
        from repro.ir.operation import Operation, opcode
        from repro.ir.superblock import Superblock

        graph = DependenceGraph()
        graph.add_operation(Operation(index=0, opcode=opcode("add")))
        graph.add_operation(
            Operation(index=1, opcode=opcode("jump"), exit_prob=1.0)
        )
        graph.freeze()
        sb = Superblock(name="orphan", graph=graph)
        with pytest.raises(ScheduleError, match="execute on no path"):
            make_schedule(sb, GP2, "t", {0: 5, 1: 0})
        # At any cycle before control leaves, the same op is fine.
        validate_schedule(
            sb, GP2, make_schedule(sb, GP2, "t", {0: 0, 1: 1})
        )


class TestBlockingOccupancy:
    def test_blocking_over_subscription_detected(self):
        # FS4-NP's single float unit is busy for 9 cycles per fdiv: a
        # second fdiv inside the occupancy window over-subscribes it even
        # though the two issue cycles differ.
        sb = (
            SuperblockBuilder("divs")
            .op("fdiv")
            .op("fdiv")
            .last_exit(preds=[0, 1])
        )
        with pytest.raises(ScheduleError, match="units"):
            make_schedule(sb, FS4_NP, "t", {0: 0, 1: 5, 2: 14})

    def test_back_to_back_after_occupancy_passes(self):
        sb = (
            SuperblockBuilder("divs")
            .op("fdiv")
            .op("fdiv")
            .last_exit(preds=[0, 1])
        )
        s = make_schedule(sb, FS4_NP, "t", {0: 0, 1: 9, 2: 18})
        validate_schedule(sb, FS4_NP, s)

    def test_same_schedule_legal_on_pipelined_twin(self):
        # The identical issue map that over-subscribes FS4-NP is legal on
        # pipelined FS4 — the gap was specific to occupancy accounting.
        sb = (
            SuperblockBuilder("divs")
            .op("fdiv")
            .op("fdiv")
            .last_exit(preds=[0, 1])
        )
        s = make_schedule(sb, FS4, "t", {0: 0, 1: 5, 2: 14})
        validate_schedule(sb, FS4, s)
