"""Unit tests for the Schedule object and its validator."""

import pytest

from repro.machine.machine import FS4, GP2
from repro.schedulers.schedule import (
    Schedule,
    ScheduleError,
    make_schedule,
    validate_schedule,
)


def valid_issue(two_exit_sb):
    return {0: 0, 1: 1, 2: 1, 3: 2, 4: 0, 5: 2, 6: 3}


class TestMakeSchedule:
    def test_wct_computed(self, two_exit_sb):
        s = make_schedule(two_exit_sb, GP2, "test", valid_issue(two_exit_sb))
        assert s.wct == pytest.approx(0.3 * 3 + 0.7 * 4)
        assert s.length == 4
        assert s.heuristic == "test"

    def test_branch_cycles(self, two_exit_sb):
        s = make_schedule(two_exit_sb, GP2, "test", valid_issue(two_exit_sb))
        assert s.branch_cycles(two_exit_sb) == {3: 2, 6: 3}

    def test_as_rows_renders_all_cycles(self, two_exit_sb):
        s = make_schedule(two_exit_sb, GP2, "test", valid_issue(two_exit_sb))
        rows = s.as_rows(two_exit_sb, GP2)
        assert len(rows) == s.length
        assert rows[0][0] == "0"


class TestValidation:
    def test_missing_operation_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        del issue[5]
        with pytest.raises(ScheduleError, match="not scheduled"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_dependence_violation_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[5] = 1  # needs op 4 + latency 2
        with pytest.raises(ScheduleError, match="dependence"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_resource_violation_detected(self, two_exit_sb):
        issue = dict.fromkeys(range(3), 0)
        issue.update({3: 1, 4: 0, 5: 2, 6: 3})  # cycle 0 has 4 ops on GP2
        with pytest.raises(ScheduleError, match="units"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_negative_cycle_detected(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[0] = -1
        with pytest.raises(ScheduleError, match="negative"):
            make_schedule(two_exit_sb, GP2, "t", issue)

    def test_per_class_capacity_checked(self, single_exit_sb):
        # ops: add, load, add, jump — serial chain; pack two loads... here
        # simply verify a valid serial schedule passes on FS4.
        issue = {0: 0, 1: 1, 2: 3, 3: 4}
        s = make_schedule(single_exit_sb, FS4, "t", issue)
        validate_schedule(single_exit_sb, FS4, s)

    def test_validate_false_skips_checks(self, two_exit_sb):
        issue = valid_issue(two_exit_sb)
        issue[5] = 0  # invalid, but validation disabled
        s = make_schedule(two_exit_sb, GP2, "t", issue, validate=False)
        assert isinstance(s, Schedule)
