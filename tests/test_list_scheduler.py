"""Unit tests for the generic list scheduler and priority functions."""

import pytest

from repro.ir.builder import SuperblockBuilder
from repro.ir.examples import figure1
from repro.machine.machine import FS4, GP1, GP2, GP4
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.priorities import (
    blend_grid,
    blend_priority,
    cp_priority,
    dhasy_priority,
    heights,
    sr_priority,
)


class TestListScheduler:
    def test_respects_dependences_and_latency(self, two_exit_sb):
        s = list_schedule(two_exit_sb, GP2, cp_priority(two_exit_sb))
        assert s.issue[5] >= s.issue[4] + 2

    def test_respects_width(self, two_exit_sb):
        s = list_schedule(two_exit_sb, GP1, cp_priority(two_exit_sb))
        cycles = list(s.issue.values())
        assert all(cycles.count(c) <= 1 for c in set(cycles))

    def test_priority_order_drives_issue(self):
        sb = (
            SuperblockBuilder("prio")
            .op("add")
            .op("add")
            .op("add")
            .last_exit(preds=[0, 1, 2])
        )
        # Give op 2 the highest priority: it must take a cycle-0 slot.
        s = list_schedule(sb, GP1, [0, 1, 2, 3])
        assert s.issue[2] == 0

    def test_tuple_priorities_supported(self, two_exit_sb):
        s = list_schedule(two_exit_sb, GP2, sr_priority(two_exit_sb))
        assert len(s.issue) == two_exit_sb.num_operations

    def test_idle_gap_jumped(self):
        # load (lat 2) then dependent op: the scheduler must skip the idle
        # cycle without spinning.
        sb = (
            SuperblockBuilder("gap")
            .op("load")
            .op("add", preds=[0])
            .last_exit(preds=[1])
        )
        s = list_schedule(sb, GP4, cp_priority(sb))
        assert s.issue == {0: 0, 1: 2, 2: 3}

    def test_greedy_fills_cycle(self, two_exit_sb):
        s = list_schedule(two_exit_sb, GP2, cp_priority(two_exit_sb))
        # Cycle 0 must be full: two ready ops exist.
        assert sum(1 for t in s.issue.values() if t == 0) == 2


class TestPriorities:
    def test_heights(self, two_exit_sb):
        h = heights(two_exit_sb)
        # op 4: lat-2 edge to 5, then 5 -> 6 (1): height 3.
        assert h[4] == 3
        assert h[6] == 0

    def test_cp_priority_is_heights(self, two_exit_sb):
        assert cp_priority(two_exit_sb) == heights(two_exit_sb)

    def test_sr_priority_orders_blocks_first(self, two_exit_sb):
        prio = sr_priority(two_exit_sb)
        # Block-0 ops beat block-1 ops regardless of height.
        assert prio[0] > prio[4]

    def test_dhasy_priority_weights_probability(self):
        sb = figure1(side_prob=0.9)
        low = figure1(side_prob=0.05)
        hi_prio = dhasy_priority(sb)
        lo_prio = dhasy_priority(low)
        # Ops 0-2 (feeding the side exit) gain priority with its weight.
        assert hi_prio[0] > lo_prio[0]

    def test_dhasy_zero_for_isolated_source(self):
        # An op that reaches only the last branch still gets some priority.
        sb = figure1()
        prio = dhasy_priority(sb)
        assert all(p > 0 for p in prio[:16])

    def test_blend_grid_has_121_points(self):
        assert len(blend_grid()) == 121
        assert len(set(blend_grid())) == 121

    def test_blend_priority_bounds(self, two_exit_sb):
        prio = blend_priority(two_exit_sb, 0.5, 0.5, 1.0)
        assert len(prio) == two_exit_sb.num_operations
        assert all(p >= 0 for p in prio)

    def test_blend_degenerate_weights(self, two_exit_sb):
        prio = blend_priority(two_exit_sb, 0.0, 0.0, 0.0)
        assert all(p == 0 for p in prio)
