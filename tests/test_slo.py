"""SLO tracker: objective validation, burn-rate arithmetic, window aging.

Everything runs on an injected fake clock / explicit timestamps — the
tracker's contract is that live tracking and offline ledger replay share
one arithmetic, so these tests never sleep and never read a real clock.
"""

from __future__ import annotations

import pytest

from repro.obs.slo import (
    DEFAULT_WINDOWS,
    Objective,
    SLOTracker,
    default_objectives,
    window_label,
)


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------
class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            Objective(name="x", kind="throughput", target=0.9)
        with pytest.raises(ValueError, match="target must be in"):
            Objective(name="x", kind="availability", target=1.0)
        with pytest.raises(ValueError, match="target must be in"):
            Objective(name="x", kind="availability", target=0.0)
        with pytest.raises(ValueError, match="positive threshold"):
            Objective(name="x", kind="latency", target=0.99)

    def test_is_good(self):
        latency = Objective(
            name="lat", kind="latency", target=0.99, threshold_s=0.5
        )
        assert latency.is_good(ok=True, latency_s=0.5)
        assert not latency.is_good(ok=True, latency_s=0.6)
        assert not latency.is_good(ok=False, latency_s=0.1)
        avail = Objective(name="up", kind="availability", target=0.999)
        assert avail.is_good(ok=True, latency_s=999.0)
        assert not avail.is_good(ok=False, latency_s=0.0)

    def test_describe(self):
        latency = Objective(
            name="lat", kind="latency", target=0.99, threshold_s=0.25
        )
        assert "0.99" in latency.describe()
        assert "250 ms" in latency.describe()
        avail = Objective(name="up", kind="availability", target=0.999)
        assert "succeed" in avail.describe()

    def test_default_objectives(self):
        objectives = default_objectives(
            latency_target=0.95,
            latency_threshold_s=0.2,
            availability_target=0.99,
        )
        assert [o.name for o in objectives] == ["latency", "availability"]
        assert objectives[0].threshold_s == 0.2
        assert objectives[1].target == 0.99


def test_window_label():
    assert window_label(300) == "5m"
    assert window_label(1800) == "30m"
    assert window_label(3600) == "1h"
    assert window_label(21600) == "6h"
    assert window_label(45) == "45s"
    assert [window_label(w) for w in DEFAULT_WINDOWS] == [
        "5m", "30m", "1h", "6h",
    ]


# ---------------------------------------------------------------------------
# Tracker
# ---------------------------------------------------------------------------
def _tracker(**kwargs) -> SLOTracker:
    return SLOTracker(
        default_objectives(
            latency_target=0.99,
            latency_threshold_s=1.0,
            availability_target=0.999,
        ),
        **kwargs,
    )


class TestSLOTracker:
    def test_burn_rate_arithmetic(self):
        tracker = _tracker()
        # 100 good + 7 slow-but-successful at t=0..106: the latency
        # objective sees 7/107 bad, availability sees 0/107.
        for i in range(100):
            tracker.record(ok=True, latency_s=0.1, t=float(i))
        for i in range(7):
            tracker.record(ok=True, latency_s=2.0, t=100.0 + i)
        t = 106.0
        assert tracker.tally("latency", 300.0, t=t) == (107, 7)
        assert tracker.burn_rate("latency", 300.0, t=t) == pytest.approx(
            (7 / 107) / 0.01
        )
        assert tracker.burn_rate("availability", 300.0, t=t) == 0.0
        # Two 5xx responses spend availability budget fast.
        tracker.record(ok=False, latency_s=0.1, t=t)
        tracker.record(ok=False, latency_s=0.1, t=t)
        assert tracker.burn_rate(
            "availability", 300.0, t=t
        ) == pytest.approx((2 / 109) / 0.001)

    def test_windows_age_out(self):
        tracker = _tracker()
        tracker.record(ok=False, latency_s=5.0, t=10.0)
        assert tracker.burn_rate("latency", 300.0, t=10.0) > 0
        # 400 s later the 5-minute window is empty again ...
        assert tracker.burn_rate("latency", 300.0, t=410.0) == 0.0
        assert tracker.tally("latency", 300.0, t=410.0) == (0, 0)
        # ... while the 1 h window still remembers.
        assert tracker.tally("latency", 3600.0, t=410.0) == (1, 1)

    def test_memory_bounded_by_longest_window(self):
        tracker = _tracker(windows=(60.0,), resolution=10.0)
        for i in range(10_000):
            tracker.record(ok=True, latency_s=0.1, t=float(i))
        ring = tracker._rings["latency"]
        # 60 s / 10 s resolution -> at most a handful of live buckets.
        assert len(ring) <= 60 // 10 + 2

    def test_injected_clock_drives_defaults(self):
        now = {"t": 50.0}
        tracker = _tracker(clock=lambda: now["t"])
        tracker.record(ok=False, latency_s=9.0)  # t defaults to clock
        assert tracker.last_recorded == 50.0
        assert tracker.burn_rate("latency", 300.0) > 0
        now["t"] = 500.0  # idle gap: live queries see the window decay
        assert tracker.burn_rate("latency", 300.0) == 0.0
        # Replay-style queries pin t explicitly and still see the run.
        assert tracker.burn_rate(
            "latency", 300.0, t=tracker.last_recorded
        ) > 0

    def test_gauges_shape(self):
        tracker = _tracker()
        tracker.record(ok=True, latency_s=0.1, t=0.0)
        gauges = tracker.gauges(t=0.0)
        assert gauges["slo.latency.target"] == 0.99
        assert gauges["slo.availability.target"] == 0.999
        for label in ("5m", "30m", "1h", "6h"):
            assert gauges[f"slo.latency.burn_rate_{label}"] == 0.0
            assert gauges[f"slo.latency.requests_{label}"] == 1.0
            assert f"slo.availability.burn_rate_{label}" in gauges

    def test_render_flags_burning_objectives(self):
        tracker = _tracker()
        for _ in range(10):
            tracker.record(ok=True, latency_s=5.0, t=1.0)
        out = tracker.render(t=1.0)
        assert "objective latency" in out
        assert "<-- burning" in out
        assert "bad 10/10" in out

    def test_as_dict(self):
        tracker = _tracker()
        tracker.record(ok=True, latency_s=2.0, t=0.0)
        report = tracker.as_dict(t=0.0)
        assert report["windows"] == sorted(DEFAULT_WINDOWS)
        by_name = {o["name"]: o for o in report["objectives"]}
        assert by_name["latency"]["threshold_s"] == 1.0
        assert "threshold_s" not in by_name["availability"]
        entry = by_name["latency"]["windows"]["5m"]
        assert entry == {
            "total": 1,
            "bad": 1,
            "burn_rate": round(1.0 / 0.01, 6),
        }

    def test_duplicate_objective_names_rejected(self):
        twice = (
            Objective(name="x", kind="availability", target=0.9),
            Objective(name="x", kind="availability", target=0.99),
        )
        with pytest.raises(ValueError, match="duplicate objective names"):
            SLOTracker(twice)

    def test_needs_a_window(self):
        with pytest.raises(ValueError, match="at least one window"):
            SLOTracker(windows=())

    def test_unknown_objective_raises(self):
        tracker = _tracker()
        with pytest.raises(KeyError):
            tracker.burn_rate("nope", 300.0, t=0.0)
