"""Tests for the CFG substrate: blocks, traces, formation, generation."""

import math

import pytest

from repro.cfg.blocks import CFG, BasicBlock, Instr, instr
from repro.cfg.formation import form_superblock, form_superblocks
from repro.cfg.gencfg import generate_cfg
from repro.cfg.trace import Trace, select_traces
from repro.ir.operation import opcode
from repro.ir.validate import validate_superblock
from repro.machine.machine import GP2
from repro.schedulers.base import schedule


def diamond_cfg() -> CFG:
    """entry -> (hot 0.9 / cold 0.1) -> join, all with dataflow."""
    cfg = CFG("diamond")
    cfg.add_block(BasicBlock("entry", [
        instr("load", dest="x", srcs=["a0"], region="heap"),
        instr("cmp", dest="c", srcs=["x", "a1"]),
    ], exec_count=100))
    cfg.add_block(BasicBlock("hot", [
        instr("add", dest="y", srcs=["x", "x"]),
    ], exec_count=90))
    cfg.add_block(BasicBlock("cold", [
        instr("mul", dest="y", srcs=["x", "a1"]),
        instr("store", srcs=["y", "a0"], region="heap"),
    ], exec_count=10))
    cfg.add_block(BasicBlock("join", [
        instr("add", dest="z", srcs=["x", "x"]),
    ], exec_count=100))
    cfg.add_edge("entry", "hot", 90)
    cfg.add_edge("entry", "cold", 10)
    cfg.add_edge("hot", "join", 90)
    cfg.add_edge("cold", "join", 10)
    return cfg


class TestInstr:
    def test_branch_instruction_rejected(self):
        with pytest.raises(ValueError, match="terminators"):
            Instr(op=opcode("branch"))

    def test_store_defines_nothing(self):
        with pytest.raises(ValueError, match="stores define"):
            instr("store", dest="x", srcs=["y"], region="heap")

    def test_memory_ops_need_region(self):
        with pytest.raises(ValueError, match="region"):
            instr("load", dest="x", srcs=["p"])

    def test_str(self):
        i = instr("add", dest="z", srcs=["x", "y"])
        assert str(i) == "z = add(x, y)"


class TestBasicBlock:
    def test_defs_and_upward_exposed_uses(self):
        block = BasicBlock("b", [
            instr("add", dest="x", srcs=["a", "b"]),
            instr("add", dest="y", srcs=["x", "c"]),
        ])
        assert block.defs == {"x", "y"}
        assert block.upward_exposed_uses == {"a", "b", "c"}


class TestCfg:
    def test_duplicate_block_rejected(self):
        cfg = CFG()
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(ValueError, match="duplicate"):
            cfg.add_block(BasicBlock("a"))

    def test_edge_to_unknown_block(self):
        cfg = CFG()
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(KeyError):
            cfg.add_edge("a", "zzz", 1)

    def test_edge_probability(self):
        cfg = diamond_cfg()
        hot = next(e for e in cfg.succs("entry") if e.dst == "hot")
        assert cfg.edge_probability(hot) == pytest.approx(0.9)

    def test_validate_catches_overflow(self):
        cfg = CFG()
        cfg.add_block(BasicBlock("a", exec_count=10))
        cfg.add_block(BasicBlock("b", exec_count=50))
        cfg.add_edge("a", "b", 50)
        with pytest.raises(ValueError, match="exceed"):
            cfg.validate()


class TestTraceSelection:
    def test_follows_hot_path(self):
        traces = select_traces(diamond_cfg())
        assert traces[0].labels == ("entry", "hot", "join")

    def test_cold_block_gets_own_trace(self):
        traces = select_traces(diamond_cfg())
        assert Trace(("cold",)) in traces

    def test_every_block_in_exactly_one_trace(self):
        cfg = generate_cfg("t", seed=9, segments=8)
        traces = select_traces(cfg)
        seen = [label for t in traces for label in t.labels]
        assert sorted(seen) == sorted(cfg.labels)

    def test_loop_back_edge_stops_growth(self):
        cfg = CFG("loop")
        cfg.add_block(BasicBlock("h", exec_count=100))
        cfg.add_block(BasicBlock("x", exec_count=10))
        cfg.add_edge("h", "h", 90)
        cfg.add_edge("h", "x", 10)
        traces = select_traces(cfg)
        assert traces[0].labels == ("h",)

    def test_min_prob_threshold(self):
        traces = select_traces(diamond_cfg(), min_prob=0.95)
        assert traces[0].labels == ("entry",)

    def test_bad_min_prob_rejected(self):
        with pytest.raises(ValueError):
            select_traces(diamond_cfg(), min_prob=0.0)


class TestFormation:
    def test_hot_trace_superblock(self):
        cfg = diamond_cfg()
        trace = select_traces(cfg)[0]
        sb = form_superblock(cfg, trace, "hot_trace")
        assert sb is not None
        validate_superblock(sb)
        # Two exits: the side exit toward `cold` (p=0.1) + the final exit.
        assert sb.num_branches == 2
        side, final = sb.branches
        assert sb.weights[side] == pytest.approx(0.1)
        assert sb.weights[final] == pytest.approx(0.9)
        assert sb.exec_freq == 100

    def test_data_edges_follow_registers(self):
        cfg = diamond_cfg()
        sb = form_superblock(cfg, select_traces(cfg)[0], "t")
        # cmp (op 1) consumes the load (op 0) with latency 2.
        assert sb.graph.edge_latency(0, 1) == 2

    def test_liveout_values_feed_the_exit(self):
        """The cold block reads x and a1, so their defs precede the exit."""
        cfg = diamond_cfg()
        sb = form_superblock(cfg, select_traces(cfg)[0], "t")
        side = sb.branches[0]
        pred_ids = {u for u, _ in sb.graph.preds(side)}
        assert 0 in pred_ids  # the load defining x

    def test_store_not_speculated_above_exit(self):
        cfg = CFG("spec")
        cfg.add_block(BasicBlock("a", [
            instr("cmp", dest="c", srcs=["a0", "a1"]),
        ], exec_count=100))
        cfg.add_block(BasicBlock("b", [
            instr("store", srcs=["a0", "a1"], region="heap"),
        ], exec_count=80))
        cfg.add_block(BasicBlock("off", [], exec_count=20))
        cfg.add_edge("a", "b", 80)
        cfg.add_edge("a", "off", 20)
        sb = form_superblock(cfg, Trace(("a", "b")), "t")
        side = sb.branches[0]
        store = next(
            op.index for op in sb.operations if op.opcode.name == "store"
        )
        assert sb.graph.has_edge(side, store)

    def test_memory_ordering_edges(self):
        cfg = CFG("mem")
        cfg.add_block(BasicBlock("a", [
            instr("store", srcs=["a0", "a1"], region="heap"),
            instr("load", dest="x", srcs=["a0"], region="heap"),
            instr("load", dest="y", srcs=["a0"], region="stack"),
            instr("store", srcs=["x", "a0"], region="heap"),
        ], exec_count=10))
        sb = form_superblock(cfg, Trace(("a",)), "t")
        assert sb.graph.has_edge(0, 1)       # store -> load, same region
        assert not sb.graph.has_edge(0, 2)   # different region
        assert sb.graph.has_edge(1, 3)       # load -> store, same region
        assert sb.graph.has_edge(0, 3)       # store -> store

    def test_unconditional_fallthrough_merges(self):
        cfg = CFG("merge")
        cfg.add_block(BasicBlock("a", [instr("add", dest="x", srcs=["a0", "a0"])],
                                 exec_count=10))
        cfg.add_block(BasicBlock("b", [instr("add", dest="y", srcs=["x", "x"])],
                                 exec_count=10))
        cfg.add_edge("a", "b", 10)
        sb = form_superblock(cfg, Trace(("a", "b")), "t")
        assert sb.num_branches == 1  # no side exit on the fall-through

    def test_cold_trace_skipped(self):
        cfg = CFG("dead")
        cfg.add_block(BasicBlock("a", [instr("mov", dest="x", srcs=["a0"])],
                                 exec_count=0.0))
        assert form_superblock(cfg, Trace(("a",)), "t") is None

    def test_tail_duplication_emits_suffixes(self):
        cfg = diamond_cfg()
        sbs = form_superblocks(cfg)
        names = [sb.name for sb in sbs]
        # Hot trace + a duplicated join tail (fed by `cold`) + cold trace.
        assert any(".dup" in n for n in names)
        dup = next(sb for sb in sbs if ".dup" in sb.name)
        assert dup.exec_freq == pytest.approx(10)

    def test_formation_probabilities_sum_to_one(self):
        cfg = generate_cfg("sum", seed=4, segments=7)
        for sb in form_superblocks(cfg):
            assert math.isclose(sum(sb.weights.values()), 1.0, abs_tol=1e-6)
            validate_superblock(sb)


class TestGeneratedCfgPipeline:
    def test_generated_cfgs_validate(self):
        for seed in range(5):
            cfg = generate_cfg(f"g{seed}", seed=seed, segments=6)
            cfg.validate()

    def test_determinism(self):
        a = generate_cfg("d", seed=7)
        b = generate_cfg("d", seed=7)
        assert [str(i) for blk in a.blocks for i in blk.instrs] == [
            str(i) for blk in b.blocks for i in blk.instrs
        ]

    def test_end_to_end_scheduling(self):
        cfg = generate_cfg("e2e", seed=11, segments=6)
        for sb in form_superblocks(cfg):
            s = schedule(sb, GP2, "balance")
            assert s.wct > 0

    def test_cfg_corpus(self):
        from repro.workloads import cfg_corpus

        corpus = cfg_corpus(functions=4, seed=2)
        assert len(corpus) >= 4
        for sb in corpus:
            validate_superblock(sb)
