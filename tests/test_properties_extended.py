"""Second property-test battery: CFG formation, simulator, occupancy.

Complements tests/test_properties.py with invariants over the newer
subsystems: formation-derived superblocks are always valid and
schedulable; the simulator's sampled exits respect the profile; blocking
units never admit overlapping windows.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.bounds.superblock_bounds import BoundSuite
from repro.cfg.formation import form_superblocks
from repro.cfg.gencfg import generate_cfg
from repro.ir.validate import validate_superblock
from repro.machine.machine import FS4_NP, GP2, MachineConfig
from repro.schedulers.base import get_scheduler
from repro.schedulers.schedule import validate_schedule
from repro.sim import run_once, simulate

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(0, 10_000), segments=st.integers(1, 8))
@common
def test_cfg_formation_always_yields_valid_superblocks(seed, segments):
    cfg = generate_cfg(f"h{seed}", seed=seed, segments=segments)
    cfg.validate()
    superblocks = form_superblocks(cfg)
    assert superblocks, "every CFG has at least one hot trace"
    for sb in superblocks:
        validate_superblock(sb)
        # Formation conserves the profile: total entry counts are positive
        # and exit probabilities are a distribution.
        assert sb.exec_freq > 0
        assert abs(sum(sb.weights.values()) - 1.0) < 1e-6


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cfg_superblocks_schedulable_and_bounded(seed):
    cfg = generate_cfg(f"s{seed}", seed=seed, segments=4)
    for sb in form_superblocks(cfg):
        suite = BoundSuite(sb, GP2, include_triplewise=False)
        bound = suite.compute().tightest
        s = get_scheduler("balance")(sb, GP2, suite=suite, validate=False)
        validate_schedule(sb, GP2, s)
        assert s.wct >= bound - 1e-9


@given(seed=st.integers(0, 10_000))
@common
def test_simulator_exit_is_always_a_real_exit(seed):
    from repro.ir.examples import figure1

    sb = figure1(side_prob=0.4)
    s = get_scheduler("balance")(sb, GP2, validate=False)
    rng = random.Random(seed)
    result = run_once(sb, GP2, s, rng)
    assert result.exit_branch in sb.branches
    assert result.cycles >= 1
    assert result.ops_wasted <= result.ops_issued


@given(
    occ=st.integers(2, 9),
    n_ops=st.integers(2, 6),
    units=st.integers(1, 2),
)
@common
def test_blocking_units_never_overlap(occ, n_ops, units):
    """Schedules on a machine with a blocking multiplier keep at most
    `units` overlapping occupancy windows at any cycle."""
    from repro.ir.builder import SuperblockBuilder

    machine = MachineConfig(
        name="blk",
        units={"int": units, "mem": 1, "float": 1, "branch": 1},
        occupancy={"mul": occ},
    )
    b = SuperblockBuilder("muls")
    for _ in range(n_ops):
        b.op("mul")
    sb = b.last_exit(preds=list(range(n_ops)))
    s = get_scheduler("balance")(sb, machine, validate=False)
    validate_schedule(sb, machine, s)
    # Manual overlap check (mirrors the validator, independently).
    starts = sorted(s.issue[v] for v in range(n_ops))
    for t in range(starts[-1] + occ):
        active = sum(1 for st_ in starts if st_ <= t < st_ + occ)
        assert active <= units


@given(runs=st.integers(100, 2000), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_simulation_mean_is_between_exit_extremes(runs, seed):
    from repro.ir.examples import figure4

    sb = figure4(0.4)
    s = get_scheduler("balance")(sb, GP2, validate=False)
    stats = simulate(sb, GP2, s, runs=runs, seed=seed)
    cycles = [s.issue[b] + 1 for b in sb.branches]
    assert min(cycles) <= stats.mean_cycles <= max(cycles)
    assert sum(stats.exit_counts.values()) == runs


@given(seed=st.integers(0, 500))
@settings(max_examples=10, deadline=None)
# Regression: the reversed-graph LateRC pass used to apply the blocking-unit
# expansion in mirrored time, making the Pairwise bound exceed an achievable
# schedule on FS4-NP for this corpus seed.
@example(seed=306)
def test_nonpipelined_bounds_never_exceed_schedules(seed):
    from repro.workloads.generator import generate_superblock
    from repro.workloads.profiles import profile_by_name

    sb = generate_superblock(profile_by_name("ijpeg"), seed % 40, seed=seed,
                             max_ops=30)
    bound = BoundSuite(sb, FS4_NP, include_triplewise=False).compute().tightest
    for name in ("cp", "balance"):
        s = get_scheduler(name)(sb, FS4_NP, validate=False)
        assert s.wct >= bound - 1e-9
