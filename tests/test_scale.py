"""Scalability tests at the paper's corpus extremes.

The paper's corpus tops out at 607 operations and 200 branches; these
tests verify the pipeline handles paper-scale superblocks in reasonable
time and that the big-graph code paths (bitmask reachability, the RJ slot
allocator, the light update) stay correct.
"""

import dataclasses
import time

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.machine.machine import FS6
from repro.schedulers.base import schedule
from repro.schedulers.schedule import validate_schedule
from repro.workloads.generator import generate_superblock
from repro.workloads.profiles import profile_by_name


@pytest.fixture(scope="module")
def big_superblock():
    profile = dataclasses.replace(
        profile_by_name("go"),
        mean_block_ops=25.0,
        mean_branches=10.0,
        max_branches=16,
    )
    best = None
    for i in range(12):
        cand = generate_superblock(profile, i, seed=77, max_ops=320)
        if best is None or cand.num_operations > best.num_operations:
            best = cand
    return best


class TestPaperScale:
    def test_big_superblock_is_big(self, big_superblock):
        assert big_superblock.num_operations >= 200
        assert big_superblock.num_branches >= 6

    def test_bounds_complete_quickly(self, big_superblock):
        t0 = time.perf_counter()
        res = BoundSuite(
            big_superblock, FS6, include_triplewise=False
        ).compute()
        assert time.perf_counter() - t0 < 20.0
        assert res.tightest > 0

    def test_balance_schedules_and_beats_bound_floor(self, big_superblock):
        suite = BoundSuite(big_superblock, FS6, include_triplewise=False)
        bound = suite.compute().tightest
        t0 = time.perf_counter()
        s = schedule(big_superblock, FS6, "balance", suite=suite)
        assert time.perf_counter() - t0 < 30.0
        validate_schedule(big_superblock, FS6, s)
        assert s.wct >= bound - 1e-9
        # Sanity: within 15% of the bound even at this size.
        assert s.wct <= 1.15 * bound

    def test_balance_competitive_with_dhasy_at_scale(self, big_superblock):
        b = schedule(big_superblock, FS6, "balance", validate=False)
        d = schedule(big_superblock, FS6, "dhasy", validate=False)
        assert b.wct <= d.wct * 1.02

    def test_bitmask_reachability_at_scale(self, big_superblock):
        g = big_superblock.graph
        final = big_superblock.last_branch
        assert len(g.ancestors(final)) == g.num_operations - 1
