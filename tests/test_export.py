"""Exporters: span JSONL -> Chrome trace-event JSON, metrics -> Prometheus."""

from __future__ import annotations

import json

import pytest

from repro.obs import export
from repro.obs.trace import Tracer


def _sample_events():
    """A small trace: root > child, plus one merged worker-unit span."""
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child", kind="inner"):
            pass
    tracer.merge_events(
        [
            {
                "event": "span",
                "id": 0,
                "name": "unit.work",
                "t0": 0.0,
                "dur": 0.001,
                "depth": 0,
            }
        ],
        origin="worker",
        unit=3,
    )
    return tracer.spans()


class TestChromeTrace:
    def test_document_structure(self):
        doc = export.spans_to_chrome_trace(_sample_events())
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"root", "child", "unit.work"}
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_worker_spans_get_their_own_track(self):
        doc = export.spans_to_chrome_trace(_sample_events())
        complete = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert complete["root"]["tid"] == export.MAIN_TID
        assert complete["unit.work"]["tid"] == export.WORKER_TID_BASE + 3
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "worker unit 3" in labels

    def test_times_scaled_to_microseconds(self):
        events = _sample_events()
        doc = export.spans_to_chrome_trace(events)
        root_src = next(e for e in events if e["name"] == "root")
        root_out = next(
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "root"
        )
        assert root_out["ts"] == pytest.approx(root_src["t0"] * 1e6)
        assert root_out["dur"] == pytest.approx(root_src["dur"] * 1e6)

    def test_attrs_ride_in_args(self):
        doc = export.spans_to_chrome_trace(_sample_events())
        child = next(
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "child"
        )
        assert child["args"]["kind"] == "inner"
        assert child["args"]["depth"] == 1

    def test_non_span_events_ignored(self):
        events = _sample_events() + [{"event": "begin", "superblock": "x"}]
        doc = export.spans_to_chrome_trace(events)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3

    def test_no_span_events_raises(self):
        with pytest.raises(ValueError, match="no span events"):
            export.spans_to_chrome_trace([{"event": "begin"}])

    def test_exporter_output_validates(self):
        doc = export.spans_to_chrome_trace(_sample_events())
        assert export.validate_chrome_trace(doc) == []

    def test_validator_flags_problems(self):
        assert export.validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]
        problems = export.validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Z", "pid": 1},
                    {"ph": "X", "pid": "one", "tid": 1, "name": "", "ts": -1},
                ]
            }
        )
        assert any("unknown phase" in p for p in problems)
        assert any("pid" in p for p in problems)
        assert any("without a name" in p for p in problems)
        assert any("negative" in p for p in problems)

    def test_write_round_trip(self, tmp_path):
        doc = export.spans_to_chrome_trace(_sample_events())
        path = tmp_path / "trace.json"
        export.write_chrome_trace(doc, path)
        loaded = json.loads(path.read_text())
        assert export.validate_chrome_trace(loaded) == []
        assert loaded == json.loads(json.dumps(doc))


class TestPrometheus:
    DATA = {
        "counters": {"cp.visit": 10, "9bad name!": 2},
        "timers": {"eval.schedule": {"total_s": 1.5, "count": 3}},
        "gauges": {"corpus_superblocks": 20},
    }

    def test_counter_rendering(self):
        text = export.metrics_to_prometheus(self.DATA)
        assert '# TYPE repro_cp_visit_total counter' in text
        assert 'repro_cp_visit_total{name="cp.visit"} 10' in text

    def test_name_sanitization_keeps_original_in_label(self):
        text = export.metrics_to_prometheus(self.DATA)
        assert '{name="9bad name!"} 2' in text
        # sanitized names never start with a digit or contain spaces
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            metric = line.split("{", 1)[0]
            assert not metric[0].isdigit()
            assert " " not in metric

    def test_timer_becomes_seconds_and_calls(self):
        text = export.metrics_to_prometheus(self.DATA)
        assert (
            'repro_eval_schedule_seconds_total{name="eval.schedule"} 1.5'
            in text
        )
        assert (
            'repro_eval_schedule_calls_total{name="eval.schedule"} 3' in text
        )

    def test_gauge_rendering_and_prefix(self):
        text = export.metrics_to_prometheus(self.DATA, prefix="bal")
        assert "# TYPE bal_corpus_superblocks gauge" in text
        assert 'bal_corpus_superblocks{name="corpus_superblocks"} 20' in text

    def test_empty_registry_renders_empty(self):
        assert export.metrics_to_prometheus({}) == ""


# ---------------------------------------------------------------------------
# Histogram families
# ---------------------------------------------------------------------------
def _hist_registry_data():
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.observe_hist("svc.lat", 0.0004)  # first bucket (le=0.0005)
    reg.observe_hist("svc.lat", 0.003)  # the (0.002, 0.004] bucket
    reg.observe_hist("svc.lat", 1e6)  # +Inf overflow
    return reg.as_dict()


class TestPrometheusHistograms:
    def test_histogram_family_rendering(self):
        text = export.metrics_to_prometheus(_hist_registry_data())
        assert "# TYPE repro_svc_lat histogram" in text
        # Buckets are cumulative in the exposition even though storage
        # is per-bucket.
        assert 'repro_svc_lat_bucket{name="svc.lat",le="0.0005"} 1' in text
        assert 'repro_svc_lat_bucket{name="svc.lat",le="0.004"} 2' in text
        assert 'repro_svc_lat_bucket{name="svc.lat",le="+Inf"} 3' in text
        assert 'repro_svc_lat_count{name="svc.lat"} 3' in text
        assert 'repro_svc_lat_sum{name="svc.lat"}' in text

    def test_histogram_exposition_validates(self):
        text = export.metrics_to_prometheus(_hist_registry_data())
        assert export.validate_prometheus_text(text) == []

    def test_mixed_families_validate(self):
        data = _hist_registry_data()
        data["counters"] = {"c": 1}
        data["timers"] = {"t": {"total_s": 0.5, "count": 1}}
        data["gauges"] = {"g": 2.0}
        text = export.metrics_to_prometheus(data)
        assert export.validate_prometheus_text(text) == []


class TestHistogramValidator:
    """The extended validator catches each way a histogram family can lie."""

    HEAD = "# HELP x x\n# TYPE x histogram\n"

    def test_non_monotone_cumulative_counts_flagged(self):
        text = self.HEAD + (
            'x_bucket{le="0.1"} 5\n'
            'x_bucket{le="+Inf"} 3\n'
            "x_sum 1\nx_count 3\n"
        )
        problems = export.validate_prometheus_text(text)
        assert any("cumulative bucket count decreases" in p for p in problems)

    def test_le_must_increase(self):
        text = self.HEAD + (
            'x_bucket{le="0.2"} 1\n'
            'x_bucket{le="0.1"} 2\n'
            'x_bucket{le="+Inf"} 2\n'
            "x_sum 1\nx_count 2\n"
        )
        problems = export.validate_prometheus_text(text)
        assert any("not increasing" in p for p in problems)

    def test_missing_inf_bucket_flagged(self):
        text = self.HEAD + 'x_bucket{le="0.1"} 1\nx_sum 1\nx_count 1\n'
        problems = export.validate_prometheus_text(text)
        assert any("missing '+Inf' bucket" in p for p in problems)

    def test_inf_bucket_must_equal_count(self):
        text = self.HEAD + (
            'x_bucket{le="+Inf"} 2\nx_sum 1\nx_count 3\n'
        )
        problems = export.validate_prometheus_text(text)
        assert any("!= _count" in p for p in problems)

    def test_missing_sum_flagged(self):
        text = self.HEAD + 'x_bucket{le="+Inf"} 1\nx_count 1\n'
        problems = export.validate_prometheus_text(text)
        assert any("missing _sum" in p for p in problems)

    def test_missing_count_flagged(self):
        text = self.HEAD + 'x_bucket{le="+Inf"} 1\nx_sum 1\n'
        problems = export.validate_prometheus_text(text)
        assert any("missing _count" in p for p in problems)

    def test_bucket_without_le_label_flagged(self):
        text = self.HEAD + "x_bucket 1\nx_sum 1\nx_count 1\n"
        problems = export.validate_prometheus_text(text)
        assert any("without an 'le' label" in p for p in problems)

    def test_declared_but_sampleless_histogram_flagged(self):
        problems = export.validate_prometheus_text(self.HEAD)
        assert any("no _bucket samples" in p for p in problems)

    def test_well_formed_synthetic_family_passes(self):
        text = self.HEAD + (
            'x_bucket{le="0.1"} 1\n'
            'x_bucket{le="0.2"} 4\n'
            'x_bucket{le="+Inf"} 5\n'
            "x_sum 0.9\nx_count 5\n"
        )
        assert export.validate_prometheus_text(text) == []
