"""Tests for compatible-branch selection and the pairwise tradeoff step."""

from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.bounds.pairwise import PairwiseBounder
from repro.core.branch_select import (
    Selection,
    select_branches,
    select_with_tradeoffs,
)
from repro.core.dynamic_bounds import BranchNeeds, DynamicBounds
from repro.ir.examples import figure2, figure4
from repro.machine.machine import GP2
from repro.machine.reservation import ReservationTable


def needs(branch, early, each=(), one=None):
    return BranchNeeds(
        branch=branch,
        early=early,
        late={},
        need_each=frozenset(each),
        need_one={r: frozenset(s) for r, s in (one or {}).items()},
    )


def always_ready(_v):
    return True


class TestSelectBranches:
    def test_ignored_branch_without_needs(self):
        sel = select_branches(
            [1], {1: needs(1, 0)}, {"gp": 2}, lambda v: "gp", always_ready
        )
        assert sel.ignored == [1]
        assert not sel.constrained

    def test_compatible_needs_merge(self):
        """Two branches whose NeedOne sets intersect are both selected."""
        n = {
            1: needs(1, 0, one={"gp": {0, 4}}),
            2: needs(2, 0, one={"gp": {0, 1, 2}}),
        }
        sel = select_branches([2, 1], n, {"gp": 2}, lambda v: "gp", always_ready)
        assert sel.selected == [2, 1]
        assert sel.take_one["gp"] == {0}

    def test_incompatible_need_one_delays(self):
        n = {
            1: needs(1, 0, one={"gp": {0}}),
            2: needs(2, 0, one={"gp": {5}}),
        }
        sel = select_branches([1, 2], n, {"gp": 2}, lambda v: "gp", always_ready)
        assert sel.selected == [1]
        assert sel.delayed == [2]

    def test_need_each_resource_overflow_delays(self):
        n = {
            1: needs(1, 0, each={0, 1}),
            2: needs(2, 0, each={2}),
        }
        sel = select_branches([1, 2], n, {"gp": 2}, lambda v: "gp", always_ready)
        assert sel.selected == [1]
        assert sel.delayed == [2]

    def test_unready_need_each_delays(self):
        n = {1: needs(1, 0, each={7})}
        sel = select_branches([1], n, {"gp": 2}, lambda v: "gp", lambda v: False)
        assert sel.delayed == [1]

    def test_take_each_satisfies_take_one(self):
        """An op required by NeedEach drops the matching TakeOne class."""
        n = {
            1: needs(1, 0, each={0}),
            2: needs(2, 0, one={"gp": {0, 3}}),
        }
        sel = select_branches([1, 2], n, {"gp": 2}, lambda v: "gp", always_ready)
        assert sel.selected == [1, 2]
        assert "gp" not in sel.take_one  # satisfied via TakeEach
        assert sel.take_each == {0}

    def test_no_room_for_take_one_after_take_each(self):
        n = {
            1: needs(1, 0, each={0, 1}),
            2: needs(2, 0, one={"gp": {5, 6}}),
        }
        sel = select_branches([1, 2], n, {"gp": 2}, lambda v: "gp", always_ready)
        assert sel.delayed == [2]

    def test_candidate_ops_union(self):
        sel = Selection(take_each={1, 2}, take_one={"gp": {5}})
        assert sel.candidate_ops() == {1, 2, 5}


class TestTradeoffs:
    def _state(self, sb, machine):
        rc = early_rc(sb.graph, machine)
        late = {
            b: late_rc_for_branch(sb.graph, machine, b, rc[b])
            for b in sb.branches
        }
        anchor = {b: rc[b] for b in sb.branches}
        state = DynamicBounds(sb, machine, rc, late, anchor)
        state.recompute(0, {}, ReservationTable(machine), list(sb.branches))
        return state, rc, late

    def test_selection_on_figure2(self):
        """Both branches of Figure 2 have compatible needs in cycle 0."""
        sb = figure2()
        state, _rc, _late = self._state(sb, GP2)
        sel = select_with_tradeoffs(
            sb, GP2, state, list(sb.branches), {"gp": 2},
            lambda v: state.early[v] <= 0, None,
        )
        assert 6 in sel.selected

    def test_tradeoff_marks_delayed_ok_on_figure4(self):
        """With a light side exit, the pairwise bound proves delaying it is
        free, raising the selection's rank."""
        sb = figure4(0.2)
        state, rc, late = self._state(sb, GP2)
        bounder = PairwiseBounder(sb.graph, GP2, rc, late, 1)
        pair_bounds = {
            (6, 18): bounder.pair_bound(6, 18, 0.2, 0.8)
        }
        ready = lambda v: state.early[v] <= 0  # noqa: E731
        with_t = select_with_tradeoffs(
            sb, GP2, state, list(sb.branches), {"gp": 2}, ready, pair_bounds
        )
        without_t = select_with_tradeoffs(
            sb, GP2, state, list(sb.branches), {"gp": 2}, ready, None
        )
        assert with_t.rank >= without_t.rank

    def test_rank_accounts_for_outcomes(self):
        sel = Selection(selected=[1], delayed=[2], delayed_ok=set())
        # ranked() is internal; emulate through select_with_tradeoffs by
        # checking the Selection fields carry the data needed.
        assert sel.selected and sel.delayed
