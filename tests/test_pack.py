"""Tests for the array-packed work-unit codec (repro.perf.pack).

The codec is the wire format of the persistent worker pool, so the
round-trip contract is property-checked over the same fuzz generators
the verification subsystem uses (blocking machine variants included) on
top of the targeted corner cases. The ``pack`` verify family runs the
stronger oracle (bounds recomputed on the decode) over a fresh corpus
every ``python -m repro verify``; these tests pin the cheap invariants.
"""

import dataclasses

import pytest

from repro.ir import SuperblockBuilder
from repro.ir.operation import opcode
from repro.machine.machine import FS4_NP, PAPER_MACHINES, MachineConfig
from repro.perf.pack import (
    PackError,
    pack_corpus,
    pack_machine,
    pack_superblock,
    superblocks_equal,
    unpack_corpus,
    unpack_machine,
    unpack_superblock,
)
from repro.verify.generators import fuzz_cases
from repro.workloads.corpus import specint95_corpus


def _fuzz(count, seed, **kwargs):
    return list(fuzz_cases(count, seed=seed, **kwargs))


class TestSuperblockRoundTrip:
    def test_fuzz_cases_round_trip_exactly(self):
        # Blocking/non-pipelined machine variants are part of the draw.
        for case in _fuzz(60, seed=123, max_ops=14, max_branches=4):
            decoded = unpack_superblock(pack_superblock(case.sb))
            assert superblocks_equal(case.sb, decoded), case.sb.name
            assert unpack_machine(pack_machine(case.machine)) == case.machine

    def test_packing_is_deterministic(self):
        for case in _fuzz(20, seed=9, max_ops=12, max_branches=3):
            assert pack_superblock(case.sb) == pack_superblock(case.sb)
            assert pack_machine(case.machine) == pack_machine(case.machine)

    def test_degenerate_single_branch_block(self):
        sb = SuperblockBuilder("tiny").last_exit()
        decoded = unpack_superblock(pack_superblock(sb))
        assert superblocks_equal(sb, decoded)
        assert decoded.branches == sb.branches
        assert decoded.operations[0].exit_prob == 1.0

    def test_one_op_one_branch_block(self):
        sb = SuperblockBuilder("pair").op("load").last_exit(preds=[0])
        decoded = unpack_superblock(pack_superblock(sb))
        assert superblocks_equal(sb, decoded)

    def test_names_and_explicit_latencies_survive(self):
        sb = (
            SuperblockBuilder("labeled", exec_freq=7.5, source="unit-test")
            .op("load", name="x")
            .op("add", preds={0: 9})  # explicit non-default latency
            .exit(0.25, preds=[1], name="guard")
            .op("fmul")
            .last_exit(preds=[3])
        )
        decoded = unpack_superblock(pack_superblock(sb))
        assert superblocks_equal(sb, decoded)
        assert decoded.operations[0].name == "x"
        assert decoded.operations[2].name == "guard"
        assert (0, 1, 9) in decoded.graph.edges()
        assert decoded.exec_freq == 7.5
        assert decoded.source == "unit-test"

    def test_bounds_identical_on_decoded_case(self):
        from repro.bounds.superblock_bounds import BoundSuite

        for case in _fuzz(8, seed=4, max_ops=12, max_branches=3):
            ref = BoundSuite(case.sb, case.machine).compute()
            got = BoundSuite(
                unpack_superblock(pack_superblock(case.sb)),
                unpack_machine(pack_machine(case.machine)),
            ).compute()
            assert got.wct == ref.wct
            assert got.tightest == ref.tightest


class TestCorpusRoundTrip:
    def test_corpus_round_trip_preserves_order(self):
        blocks = list(specint95_corpus(scale=10, seed=42, max_ops=24))
        decoded = unpack_corpus(pack_corpus(blocks))
        assert len(decoded) == len(blocks)
        for original, copy in zip(blocks, decoded):
            assert superblocks_equal(original, copy)

    def test_empty_corpus(self):
        assert unpack_corpus(pack_corpus([])) == []

    def test_corpus_bytes_deterministic(self):
        blocks = list(specint95_corpus(scale=8, seed=7, max_ops=16))
        assert pack_corpus(blocks) == pack_corpus(blocks)


class TestMachineRoundTrip:
    @pytest.mark.parametrize(
        "machine", PAPER_MACHINES + (FS4_NP,), ids=lambda m: m.name
    )
    def test_paper_machines_round_trip(self, machine):
        assert unpack_machine(pack_machine(machine)) == machine

    def test_blocking_variant_round_trips(self):
        machine = MachineConfig(
            name="GP2-Bload3",
            units=dict(PAPER_MACHINES[0].units),
            occupancy={"load": 3, "fdiv": 4},
        )
        assert unpack_machine(pack_machine(machine)) == machine


class TestRejections:
    def test_non_catalog_opcode_is_refused(self):
        # Same name as a catalog entry, different latency: decoding would
        # silently resolve it to the catalog op, so packing must refuse.
        weird = dataclasses.replace(opcode("load"), latency=99)
        sb = SuperblockBuilder("bad").op(weird).last_exit(preds=[0])
        with pytest.raises(PackError, match="not the catalog opcode"):
            pack_superblock(sb)

    def test_truncated_payload_is_refused(self):
        blob = pack_superblock(SuperblockBuilder("t").op("add").last_exit())
        with pytest.raises(PackError, match="truncated"):
            unpack_superblock(blob[: len(blob) - 3])

    def test_version_mismatch_is_refused(self):
        blob = pack_superblock(SuperblockBuilder("v").last_exit())
        bumped = bytes([blob[0] ^ 0xFF]) + blob[1:]
        with pytest.raises(PackError, match="version"):
            unpack_superblock(bumped)
        with pytest.raises(PackError, match="version"):
            unpack_corpus(bumped)
        with pytest.raises(PackError, match="version"):
            unpack_machine(bumped)
