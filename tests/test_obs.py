"""Observability layer: span tracer, metrics registry, logging setup.

Three contracts matter most:

* the **disabled path is free** — no tracer installed means one global
  read and a shared no-op context manager; quantified below against an
  RJ solve loop (<5% overhead);
* enabling observability **never changes results** — schedules and
  bounds are bit-identical with tracing/recording on and off;
* registries are **mergeable and picklable**, so per-worker deltas
  aggregate deterministically.
"""

from __future__ import annotations

import json
import logging
import pickle
import time

import pytest

from repro.bounds.branch_rj import rj_branch_bounds
from repro.bounds.superblock_bounds import BoundSuite
from repro.core.balance import balance_schedule
from repro.machine.machine import FS4, GP2
from repro.obs import trace
from repro.obs.decision_trace import DecisionRecorder
from repro.obs.logsetup import ROOT_LOGGER, get_logger, setup_logging
from repro.obs.metrics import (
    HIST_BUCKETS,
    Histogram,
    MetricsRegistry,
    active,
    active_counters,
    render_metrics,
)
from repro.obs.trace import NOOP_SPAN, Tracer, render_spans
from repro.workloads.corpus import specint95_corpus


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_the_shared_noop(self):
        assert trace.current() is None
        assert trace.span("anything", key=1) is NOOP_SPAN
        with trace.span("still.noop"):
            pass  # must be usable as a context manager

    def test_spans_record_nesting_and_attrs(self):
        tracer = Tracer()
        with trace.install(tracer):
            with trace.span("outer", sb="fig2"):
                with trace.span("inner"):
                    pass
            with trace.span("outer"):
                pass
        assert trace.current() is None  # restored
        events = tracer.spans()
        assert [e["name"] for e in events] == ["outer", "inner", "outer"]
        outer, inner, _ = events
        assert outer["depth"] == 0 and inner["depth"] == 1
        assert inner["parent"] == outer["id"]
        assert outer["attrs"] == {"sb": "fig2"}
        assert all(e["dur"] >= 0 for e in events)
        assert tracer.total("outer") >= tracer.spans("outer")[0]["dur"]

    def test_install_nests_and_restores_previous(self):
        first, second = Tracer(), Tracer()
        with trace.install(first):
            with trace.install(second):
                with trace.span("x"):
                    pass
            with trace.span("y"):
                pass
        assert [e["name"] for e in second.events] == ["x"]
        assert [e["name"] for e in first.events] == ["y"]

    def test_span_records_even_on_exception(self):
        tracer = Tracer()
        with trace.install(tracer):
            try:
                with trace.span("failing"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert [e["name"] for e in tracer.events] == ["failing"]

    def test_write_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with trace.install(tracer), trace.span("phase", n=3):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["event"] == "span"
        assert events[0]["name"] == "phase"
        assert "phase" in render_spans(events)


class TestTracerBind:
    def test_bound_context_stamps_spans(self):
        tracer = Tracer()
        with tracer.bind(request_id="req-1"):
            with tracer.span("inside"):
                pass
        with tracer.span("outside"):
            pass
        inside, outside = tracer.spans()
        assert inside["attrs"] == {"request_id": "req-1"}
        assert "attrs" not in outside  # context never leaks past bind()

    def test_binds_nest_and_inner_shadows(self):
        tracer = Tracer()
        with tracer.bind(rid="a", zone="z1"):
            with tracer.bind(rid="b"):
                with tracer.span("deep"):
                    pass
            with tracer.span("shallow"):
                pass
        deep, shallow = tracer.spans()
        assert deep["attrs"] == {"rid": "b", "zone": "z1"}
        assert shallow["attrs"] == {"rid": "a", "zone": "z1"}

    def test_explicit_span_attrs_win_over_context(self):
        tracer = Tracer()
        with tracer.bind(rid="ambient", extra=1):
            with tracer.span("s", rid="explicit"):
                pass
        (event,) = tracer.spans()
        assert event["attrs"] == {"rid": "explicit", "extra": 1}

    def test_merge_events_folds_context_in(self):
        """The worker path: parent-side merge stamps the bound context
        onto worker spans, with the merge call's explicit attrs winning
        over the bound context on collision."""
        tracer = Tracer()
        unit = [
            {
                "event": "span",
                "id": 0,
                "name": "unit.work",
                "t0": 0.0,
                "dur": 0.001,
                "depth": 0,
                "attrs": {"local": True},
            }
        ]
        with tracer.bind(request_id="req-9", origin="parent"):
            tracer.merge_events(unit, origin="worker", unit=0)
        (merged,) = tracer.spans()
        assert merged["attrs"]["request_id"] == "req-9"
        assert merged["attrs"]["origin"] == "worker"
        assert merged["attrs"]["local"] is True
        # The caller's event dict was not mutated in place.
        assert unit[0]["attrs"] == {"local": True}


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_timers_gauges(self):
        reg = MetricsRegistry()
        reg.add("rj.place", 5)
        reg.add("rj.place")
        reg.observe("phase", 0.25)
        with reg.timer("phase"):
            pass
        reg.gauge("corpus", 32)
        data = reg.as_dict()
        assert data["counters"]["rj.place"] == 6
        assert data["timers"]["phase"]["count"] == 2
        assert data["timers"]["phase"]["total_s"] >= 0.25
        assert data["gauges"]["corpus"] == 32
        assert "rj.place" in render_metrics(data)

    def test_merge_sums_counters_and_timers(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.add("n", 1)
        b.add("n", 2)
        a.observe("t", 1.0)
        b.observe("t", 2.0)
        b.gauge("g", 7)
        a.merge(b)
        data = a.as_dict()
        assert data["counters"]["n"] == 3
        assert data["timers"]["t"] == {"total_s": 3.0, "count": 2}
        assert data["gauges"]["g"] == 7

    def test_merge_dict_preserves_timer_counts(self):
        src = MetricsRegistry()
        src.observe("t", 0.5)
        src.observe("t", 0.5)
        src.add("c", 4)
        dst = MetricsRegistry.from_dict(src.as_dict())
        assert dst.as_dict() == src.as_dict()

    def test_picklable(self):
        reg = MetricsRegistry()
        reg.add("c", 3)
        reg.observe("t", 0.1)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.as_dict() == reg.as_dict()

    def test_activation_stack(self):
        assert active() is None
        assert active_counters() is None
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with outer.activated():
            assert active() is outer
            with inner.activated():
                assert active_counters() is inner.counters
            assert active() is outer
        assert active() is None

    def test_save(self, tmp_path):
        reg = MetricsRegistry()
        reg.add("c", 1)
        path = tmp_path / "m.json"
        reg.save(path)
        assert json.loads(path.read_text())["counters"] == {"c": 1}


# ---------------------------------------------------------------------------
# Streaming histograms
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_bucket_layout(self):
        assert len(HIST_BUCKETS) == 20
        assert HIST_BUCKETS[0] == 0.0005
        assert all(
            b == pytest.approx(a * 2) for a, b in zip(HIST_BUCKETS, HIST_BUCKETS[1:])
        )

    def test_observe_places_values(self):
        hist = Histogram()
        hist.observe(0.0001)  # below the first bound -> bucket 0
        hist.observe(0.0005)  # exactly on a bound -> that bucket (le)
        hist.observe(0.0006)  # just above -> next bucket
        hist.observe(1e9)  # overflow -> +Inf slot
        assert hist.counts[0] == 2
        assert hist.counts[1] == 1
        assert hist.counts[-1] == 1
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.0001 + 0.0005 + 0.0006 + 1e9)

    def test_merge_is_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(0.001)
        b.observe(0.001)
        b.observe(10.0)
        a.merge(b)
        assert a.count == 3
        assert sum(a.counts) == 3
        assert a.sum == pytest.approx(0.002 + 10.0)

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0  # empty
        for _ in range(100):
            hist.observe(0.003)  # lands in the (0.002, 0.004] bucket
        q50 = hist.quantile(0.5)
        assert 0.002 <= q50 <= 0.004
        # Overflow observations report the largest finite bound.
        only_inf = Histogram()
        only_inf.observe(1e9)
        assert only_inf.quantile(0.99) == HIST_BUCKETS[-1]

    def test_registry_round_trip_with_histograms(self):
        src = MetricsRegistry()
        src.add("c", 2)
        src.observe_hist("lat", 0.01)
        src.observe_hist("lat", 3.0)
        data = src.as_dict()
        assert data["histograms"]["lat"]["count"] == 2
        dst = MetricsRegistry.from_dict(data)
        assert dst.as_dict() == data
        # merge() sums histograms like everything else.
        dst.merge(src)
        assert dst.histogram("lat").count == 4

    def test_as_dict_omits_empty_histograms_key(self):
        """Pre-histogram serialized shapes stay byte-stable: the key only
        appears once a histogram has been created."""
        reg = MetricsRegistry()
        reg.add("c", 1)
        assert "histograms" not in reg.as_dict()
        reg.observe_hist("lat", 0.5)
        assert "histograms" in reg.as_dict()

    def test_picklable_with_histograms(self):
        reg = MetricsRegistry()
        reg.observe_hist("lat", 0.25)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.as_dict() == reg.as_dict()


# ---------------------------------------------------------------------------
# Logging setup
# ---------------------------------------------------------------------------
class TestLogging:
    def test_setup_is_idempotent(self):
        logger = setup_logging(logging.DEBUG)
        handlers = list(logger.handlers)
        again = setup_logging(logging.INFO)
        assert again is logger
        assert list(logger.handlers) == handlers  # no handler stacking
        assert not logger.propagate

    def test_get_logger_prefixes(self):
        assert get_logger("eval.report").name == f"{ROOT_LOGGER}.eval.report"
        assert get_logger(f"{ROOT_LOGGER}.perf.bench").name == f"{ROOT_LOGGER}.perf.bench"
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER


# ---------------------------------------------------------------------------
# Enabling observability never changes results
# ---------------------------------------------------------------------------
class TestIdentityContract:
    def test_bounds_identical_with_tracing_on(self):
        corpus = specint95_corpus(scale=8, seed=11, max_ops=30)
        for sb in corpus:
            plain = BoundSuite(sb, FS4, include_triplewise=False).compute()
            tracer = Tracer()
            reg = MetricsRegistry()
            with trace.install(tracer), reg.activated():
                traced = BoundSuite(sb, FS4, include_triplewise=False).compute()
            assert traced.wct == plain.wct
            assert traced.branch_bounds == plain.branch_bounds
            assert tracer.events  # spans were recorded
            assert reg.counters.as_dict()  # counters flowed to the registry

    def test_balance_schedule_identical_with_recorder(self):
        corpus = specint95_corpus(scale=8, seed=11, max_ops=30)
        for sb in corpus:
            plain = balance_schedule(sb, GP2, validate=False)
            recorder = DecisionRecorder()
            tracer = Tracer()
            with trace.install(tracer):
                recorded = balance_schedule(
                    sb, GP2, validate=False, recorder=recorder
                )
            assert recorded.issue == plain.issue
            assert recorded.wct == plain.wct
            kinds = {e["event"] for e in recorder.events}
            assert {"begin", "cycle", "selection", "issue", "end"} <= kinds


# ---------------------------------------------------------------------------
# Disabled-path overhead
# ---------------------------------------------------------------------------
def _timed(fn) -> float:
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def test_noop_span_overhead_under_five_percent():
    """The disabled span path adds <5% to an RJ solve loop.

    This quantifies the "free when off" contract: a span site wrapping
    each RJ branch-bound solve (a sub-millisecond unit of real work, far
    finer-grained than the library's actual coarse span sites) must stay
    in the noise when no tracer is installed. Timings are interleaved
    best-of-9 CPU-time samples so scheduler noise hits both variants
    alike.
    """
    from repro import kernels

    corpus = list(specint95_corpus(scale=8, seed=5, max_ops=40))
    assert trace.current() is None

    def plain() -> None:
        for _ in range(4):
            for sb in corpus:
                rj_branch_bounds(sb, FS4)

    def spanned() -> None:
        for _ in range(4):
            for sb in corpus:
                with trace.span("rj.solve"):
                    rj_branch_bounds(sb, FS4)

    # Pin the python kernel: the ratio contract is about the tracer, and
    # the numpy backend makes the workload small enough that the span's
    # fixed cost would dominate the denominator.
    with kernels.forced("python"):
        plain()  # warm caches before timing
        spanned()
        baseline = with_noop = float("inf")
        for _ in range(9):
            baseline = min(baseline, _timed(plain))
            with_noop = min(with_noop, _timed(spanned))
    assert with_noop <= baseline * 1.05, (
        f"no-op span overhead {100 * (with_noop / baseline - 1):.2f}% "
        f"exceeds 5% ({with_noop:.4f}s vs {baseline:.4f}s)"
    )
