"""Observability layer: span tracer, metrics registry, logging setup.

Three contracts matter most:

* the **disabled path is free** — no tracer installed means one global
  read and a shared no-op context manager; quantified below against an
  RJ solve loop (<5% overhead);
* enabling observability **never changes results** — schedules and
  bounds are bit-identical with tracing/recording on and off;
* registries are **mergeable and picklable**, so per-worker deltas
  aggregate deterministically.
"""

from __future__ import annotations

import json
import logging
import pickle
import time

from repro.bounds.branch_rj import rj_branch_bounds
from repro.bounds.superblock_bounds import BoundSuite
from repro.core.balance import balance_schedule
from repro.machine.machine import FS4, GP2
from repro.obs import trace
from repro.obs.decision_trace import DecisionRecorder
from repro.obs.logsetup import ROOT_LOGGER, get_logger, setup_logging
from repro.obs.metrics import MetricsRegistry, active, active_counters, render_metrics
from repro.obs.trace import NOOP_SPAN, Tracer, render_spans
from repro.workloads.corpus import specint95_corpus


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_the_shared_noop(self):
        assert trace.current() is None
        assert trace.span("anything", key=1) is NOOP_SPAN
        with trace.span("still.noop"):
            pass  # must be usable as a context manager

    def test_spans_record_nesting_and_attrs(self):
        tracer = Tracer()
        with trace.install(tracer):
            with trace.span("outer", sb="fig2"):
                with trace.span("inner"):
                    pass
            with trace.span("outer"):
                pass
        assert trace.current() is None  # restored
        events = tracer.spans()
        assert [e["name"] for e in events] == ["outer", "inner", "outer"]
        outer, inner, _ = events
        assert outer["depth"] == 0 and inner["depth"] == 1
        assert inner["parent"] == outer["id"]
        assert outer["attrs"] == {"sb": "fig2"}
        assert all(e["dur"] >= 0 for e in events)
        assert tracer.total("outer") >= tracer.spans("outer")[0]["dur"]

    def test_install_nests_and_restores_previous(self):
        first, second = Tracer(), Tracer()
        with trace.install(first):
            with trace.install(second):
                with trace.span("x"):
                    pass
            with trace.span("y"):
                pass
        assert [e["name"] for e in second.events] == ["x"]
        assert [e["name"] for e in first.events] == ["y"]

    def test_span_records_even_on_exception(self):
        tracer = Tracer()
        with trace.install(tracer):
            try:
                with trace.span("failing"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert [e["name"] for e in tracer.events] == ["failing"]

    def test_write_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with trace.install(tracer), trace.span("phase", n=3):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["event"] == "span"
        assert events[0]["name"] == "phase"
        assert "phase" in render_spans(events)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_timers_gauges(self):
        reg = MetricsRegistry()
        reg.add("rj.place", 5)
        reg.add("rj.place")
        reg.observe("phase", 0.25)
        with reg.timer("phase"):
            pass
        reg.gauge("corpus", 32)
        data = reg.as_dict()
        assert data["counters"]["rj.place"] == 6
        assert data["timers"]["phase"]["count"] == 2
        assert data["timers"]["phase"]["total_s"] >= 0.25
        assert data["gauges"]["corpus"] == 32
        assert "rj.place" in render_metrics(data)

    def test_merge_sums_counters_and_timers(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.add("n", 1)
        b.add("n", 2)
        a.observe("t", 1.0)
        b.observe("t", 2.0)
        b.gauge("g", 7)
        a.merge(b)
        data = a.as_dict()
        assert data["counters"]["n"] == 3
        assert data["timers"]["t"] == {"total_s": 3.0, "count": 2}
        assert data["gauges"]["g"] == 7

    def test_merge_dict_preserves_timer_counts(self):
        src = MetricsRegistry()
        src.observe("t", 0.5)
        src.observe("t", 0.5)
        src.add("c", 4)
        dst = MetricsRegistry.from_dict(src.as_dict())
        assert dst.as_dict() == src.as_dict()

    def test_picklable(self):
        reg = MetricsRegistry()
        reg.add("c", 3)
        reg.observe("t", 0.1)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.as_dict() == reg.as_dict()

    def test_activation_stack(self):
        assert active() is None
        assert active_counters() is None
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with outer.activated():
            assert active() is outer
            with inner.activated():
                assert active_counters() is inner.counters
            assert active() is outer
        assert active() is None

    def test_save(self, tmp_path):
        reg = MetricsRegistry()
        reg.add("c", 1)
        path = tmp_path / "m.json"
        reg.save(path)
        assert json.loads(path.read_text())["counters"] == {"c": 1}


# ---------------------------------------------------------------------------
# Logging setup
# ---------------------------------------------------------------------------
class TestLogging:
    def test_setup_is_idempotent(self):
        logger = setup_logging(logging.DEBUG)
        handlers = list(logger.handlers)
        again = setup_logging(logging.INFO)
        assert again is logger
        assert list(logger.handlers) == handlers  # no handler stacking
        assert not logger.propagate

    def test_get_logger_prefixes(self):
        assert get_logger("eval.report").name == f"{ROOT_LOGGER}.eval.report"
        assert get_logger(f"{ROOT_LOGGER}.perf.bench").name == f"{ROOT_LOGGER}.perf.bench"
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER


# ---------------------------------------------------------------------------
# Enabling observability never changes results
# ---------------------------------------------------------------------------
class TestIdentityContract:
    def test_bounds_identical_with_tracing_on(self):
        corpus = specint95_corpus(scale=8, seed=11, max_ops=30)
        for sb in corpus:
            plain = BoundSuite(sb, FS4, include_triplewise=False).compute()
            tracer = Tracer()
            reg = MetricsRegistry()
            with trace.install(tracer), reg.activated():
                traced = BoundSuite(sb, FS4, include_triplewise=False).compute()
            assert traced.wct == plain.wct
            assert traced.branch_bounds == plain.branch_bounds
            assert tracer.events  # spans were recorded
            assert reg.counters.as_dict()  # counters flowed to the registry

    def test_balance_schedule_identical_with_recorder(self):
        corpus = specint95_corpus(scale=8, seed=11, max_ops=30)
        for sb in corpus:
            plain = balance_schedule(sb, GP2, validate=False)
            recorder = DecisionRecorder()
            tracer = Tracer()
            with trace.install(tracer):
                recorded = balance_schedule(
                    sb, GP2, validate=False, recorder=recorder
                )
            assert recorded.issue == plain.issue
            assert recorded.wct == plain.wct
            kinds = {e["event"] for e in recorder.events}
            assert {"begin", "cycle", "selection", "issue", "end"} <= kinds


# ---------------------------------------------------------------------------
# Disabled-path overhead
# ---------------------------------------------------------------------------
def _timed(fn) -> float:
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def test_noop_span_overhead_under_five_percent():
    """The disabled span path adds <5% to an RJ solve loop.

    This quantifies the "free when off" contract: a span site wrapping
    each RJ branch-bound solve (a sub-millisecond unit of real work, far
    finer-grained than the library's actual coarse span sites) must stay
    in the noise when no tracer is installed. Timings are interleaved
    best-of-9 CPU-time samples so scheduler noise hits both variants
    alike.
    """
    from repro import kernels

    corpus = list(specint95_corpus(scale=8, seed=5, max_ops=40))
    assert trace.current() is None

    def plain() -> None:
        for _ in range(4):
            for sb in corpus:
                rj_branch_bounds(sb, FS4)

    def spanned() -> None:
        for _ in range(4):
            for sb in corpus:
                with trace.span("rj.solve"):
                    rj_branch_bounds(sb, FS4)

    # Pin the python kernel: the ratio contract is about the tracer, and
    # the numpy backend makes the workload small enough that the span's
    # fixed cost would dominate the denominator.
    with kernels.forced("python"):
        plain()  # warm caches before timing
        spanned()
        baseline = with_noop = float("inf")
        for _ in range(9):
            baseline = min(baseline, _timed(plain))
            with_noop = min(with_noop, _timed(spanned))
    assert with_noop <= baseline * 1.05, (
        f"no-op span overhead {100 * (with_noop / baseline - 1):.2f}% "
        f"exceeds 5% ({with_noop:.4f}s vs {baseline:.4f}s)"
    )
