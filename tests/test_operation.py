"""Unit tests for repro.ir.operation."""

import pytest

from repro.ir.operation import (
    BRANCH_LATENCY,
    OPCODES,
    OpClass,
    Opcode,
    Operation,
    opcode,
)


class TestOpcodeCatalog:
    def test_catalog_has_core_opcodes(self):
        for name in ("add", "load", "store", "fmul", "fdiv", "branch", "jump"):
            assert name in OPCODES

    def test_paper_latencies(self):
        """Section 6: unit latency except load=2, fmul=3, fdiv=9."""
        assert opcode("load").latency == 2
        assert opcode("fmul").latency == 3
        assert opcode("fdiv").latency == 9
        assert opcode("add").latency == 1
        assert opcode("store").latency == 1
        assert opcode("fadd").latency == 1

    def test_branch_latency_is_one(self):
        assert BRANCH_LATENCY == 1
        assert opcode("branch").latency == 1
        assert opcode("jump").latency == 1

    def test_opcode_classes(self):
        assert opcode("add").op_class is OpClass.INT
        assert opcode("load").op_class is OpClass.MEM
        assert opcode("fdiv").op_class is OpClass.FLOAT
        assert opcode("branch").op_class is OpClass.BRANCH

    def test_unknown_opcode_raises_with_catalog(self):
        with pytest.raises(KeyError, match="unknown opcode"):
            opcode("vector_madd")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Opcode("weird", OpClass.INT, -1)


class TestOperation:
    def test_basic_properties(self):
        op = Operation(index=3, opcode=opcode("load"))
        assert op.latency == 2
        assert op.op_class is OpClass.MEM
        assert not op.is_branch
        assert op.label == "load3"

    def test_branch_carries_exit_probability(self):
        br = Operation(index=5, opcode=opcode("branch"), exit_prob=0.25)
        assert br.is_branch
        assert br.exit_prob == 0.25
        assert "p=0.25" in str(br)

    def test_non_branch_rejects_exit_probability(self):
        with pytest.raises(ValueError, match="non-zero exit probability"):
            Operation(index=0, opcode=opcode("add"), exit_prob=0.5)

    def test_branch_probability_range_checked(self):
        with pytest.raises(ValueError):
            Operation(index=0, opcode=opcode("branch"), exit_prob=1.5)
        with pytest.raises(ValueError):
            Operation(index=0, opcode=opcode("branch"), exit_prob=-0.1)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Operation(index=-1, opcode=opcode("add"))

    def test_explicit_name_wins_in_label(self):
        op = Operation(index=0, opcode=opcode("add"), name="x")
        assert op.label == "x"

    def test_operations_are_frozen(self):
        op = Operation(index=0, opcode=opcode("add"))
        with pytest.raises(AttributeError):
            op.index = 1  # type: ignore[misc]
