"""Parallel evaluation must be indistinguishable from serial evaluation.

The contract of :mod:`repro.perf` is that ``jobs`` only changes wall-clock
time: every eval entry point returns bit-identical results for ``jobs=1``,
``jobs=2`` and ``jobs=os.cpu_count()``, and the table renderings are
byte-identical strings.
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro.eval.bounds_eval import bound_costs, bound_quality
from repro.eval.metrics import NoProfileWeights
from repro.eval.sched_eval import evaluate_corpus
from repro.eval.tables import table1, table3
from repro.machine.machine import FS4, GP2
from repro.obs import trace as trace_mod
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import ParallelRunner, effective_jobs
from repro.perf.workers import corpus_map, is_picklable
from repro.workloads.corpus import Corpus, specint95_corpus

#: Small heuristic set keeps the scheduling fan-out fast in CI.
FAST_HEURISTICS = ("cp", "dhasy", "balance")

JOB_COUNTS = (1, 2, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def par_corpus() -> Corpus:
    """The seeded ~20-superblock corpus of the parallel-identity property."""
    return specint95_corpus(scale=20, seed=13, max_ops=36)


# ---------------------------------------------------------------------------
# ParallelRunner unit behavior
# ---------------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


_INIT_STATE: list[str] = []


def _set_state(tag: str) -> None:
    _INIT_STATE.append(tag)


def test_runner_preserves_input_order():
    items = list(range(57))
    expected = [x * x for x in items]
    assert ParallelRunner(jobs=1).map(_square, items) == expected
    assert ParallelRunner(jobs=3).map(_square, items) == expected
    assert ParallelRunner(jobs=3, chunk_size=5).map(_square, items) == expected


def test_runner_serial_fallback_runs_initializer_inline():
    _INIT_STATE.clear()
    runner = ParallelRunner(jobs=1, initializer=_set_state, initargs=("here",))
    assert runner.map(_square, [2, 3]) == [4, 9]
    assert _INIT_STATE == ["here"]


def test_effective_jobs_normalization():
    assert effective_jobs(None) == 1
    assert effective_jobs(1) == 1
    assert effective_jobs(5) == 5
    assert effective_jobs(0) >= 1  # all CPUs
    assert not ParallelRunner(jobs=1).parallel
    assert ParallelRunner(jobs=2).parallel


def test_corpus_map_serial_for_unpicklable_extras(par_corpus):
    """Unpicklable extras (a lambda) silently force the serial path."""
    weigher = lambda sb: {b: 1.0 for b in sb.branches}  # noqa: E731
    assert not is_picklable(weigher)
    superblocks = list(par_corpus)[:3]
    out = corpus_map(
        _name_with, superblocks, [(i, (weigher,)) for i in range(3)], jobs=2
    )
    assert out == [sb.name for sb in superblocks]


def _name_with(sb, weigher) -> str:
    return sb.name


# ---------------------------------------------------------------------------
# jobs=1 == jobs=2 == jobs=cpu_count property
# ---------------------------------------------------------------------------
def test_bound_quality_identical_across_jobs(par_corpus):
    reference = bound_quality(
        par_corpus, [GP2, FS4], include_triplewise=False, jobs=1
    )
    for jobs in JOB_COUNTS[1:]:
        assert (
            bound_quality(
                par_corpus, [GP2, FS4], include_triplewise=False, jobs=jobs
            )
            == reference
        )


def test_bound_costs_identical_across_jobs(par_corpus):
    reference = bound_costs(par_corpus, [GP2], include_triplewise=False, jobs=1)
    assert (
        bound_costs(par_corpus, [GP2], include_triplewise=False, jobs=2)
        == reference
    )


def test_evaluate_corpus_identical_across_jobs(par_corpus):
    reference = evaluate_corpus(
        par_corpus, GP2, FAST_HEURISTICS, include_triplewise=False, jobs=1
    )
    for jobs in JOB_COUNTS[1:]:
        summary = evaluate_corpus(
            par_corpus, GP2, FAST_HEURISTICS, include_triplewise=False, jobs=jobs
        )
        assert summary == reference


def test_evaluate_corpus_parallel_with_scheduling_weights(par_corpus):
    """The no-profile weights callable crosses the process boundary."""
    assert is_picklable(NoProfileWeights(1000.0))
    reference = evaluate_corpus(
        par_corpus,
        FS4,
        FAST_HEURISTICS,
        scheduling_weights=NoProfileWeights(1000.0),
        include_triplewise=False,
        jobs=1,
    )
    parallel = evaluate_corpus(
        par_corpus,
        FS4,
        FAST_HEURISTICS,
        scheduling_weights=NoProfileWeights(1000.0),
        include_triplewise=False,
        jobs=2,
    )
    assert parallel == reference


def test_tables_byte_identical_across_jobs(par_corpus):
    t1_serial = table1(
        par_corpus, (GP2,), (FS4,), include_triplewise=False, jobs=1
    ).render()
    t1_parallel = table1(
        par_corpus, (GP2,), (FS4,), include_triplewise=False, jobs=2
    ).render()
    assert t1_parallel == t1_serial

    t3_serial = table3(
        par_corpus,
        (GP2,),
        heuristics=FAST_HEURISTICS,
        include_triplewise=False,
        jobs=1,
    ).render()
    t3_parallel = table3(
        par_corpus,
        (GP2,),
        heuristics=FAST_HEURISTICS,
        include_triplewise=False,
        jobs=2,
    ).render()
    assert t3_parallel == t3_serial


# ---------------------------------------------------------------------------
# Metrics aggregation: counters survive the process boundary
# ---------------------------------------------------------------------------
def test_evaluate_corpus_counters_identical_across_jobs(par_corpus):
    """Regression: worker Counters used to be silently lost under jobs>1.

    Each worker now runs under its own registry and ships its delta back;
    the parent merge must reproduce the serial totals exactly.
    """
    registries = {}
    for jobs in JOB_COUNTS:
        registries[jobs] = reg = MetricsRegistry()
        evaluate_corpus(
            par_corpus,
            GP2,
            FAST_HEURISTICS,
            include_triplewise=False,
            jobs=jobs,
            metrics=reg,
        )
    reference = registries[1].counters.as_dict()
    assert reference  # serial run actually counted something
    assert any(name.startswith("balance.") for name in reference)
    for jobs in JOB_COUNTS[1:]:
        assert registries[jobs].counters.as_dict() == reference


def test_bound_costs_counters_identical_across_jobs(par_corpus):
    serial, parallel = MetricsRegistry(), MetricsRegistry()
    bound_costs(
        par_corpus, [GP2], include_triplewise=False, jobs=1, metrics=serial
    )
    bound_costs(
        par_corpus, [GP2], include_triplewise=False, jobs=2, metrics=parallel
    )
    reference = serial.counters.as_dict()
    # Table 2's per-bound loop-trip counters must all be present...
    assert {"table2.CP", "table2.RJ", "table2.LC", "table2.PW"} <= set(reference)
    # ...and identical after the parallel merge.
    assert parallel.counters.as_dict() == reference


# ---------------------------------------------------------------------------
# Span aggregation: worker spans survive the process boundary
# ---------------------------------------------------------------------------
def _span_inventory(tracer: trace_mod.Tracer) -> "Counter[str]":
    return Counter(e["name"] for e in tracer.spans())


def _span_kernel(sb) -> str:
    with trace_mod.span("test.unit", sb=sb.name):
        return sb.name


def test_evaluate_corpus_spans_identical_across_jobs(par_corpus):
    """Regression: worker spans used to be silently lost under jobs>1.

    Mirror of the counter-loss fix: each worker unit runs under a fresh
    tracer whose events merge back in input order, so the span inventory
    (names and counts) is identical for any job count.
    """
    tracers = {}
    for jobs in JOB_COUNTS:
        tracers[jobs] = tracer = trace_mod.Tracer()
        with trace_mod.install(tracer):
            evaluate_corpus(
                par_corpus,
                GP2,
                FAST_HEURISTICS,
                include_triplewise=False,
                jobs=jobs,
            )
    reference = _span_inventory(tracers[1])
    assert reference  # serial run recorded spans at all
    assert any(name.startswith("bounds.") for name in reference)
    for jobs in JOB_COUNTS[1:]:
        assert _span_inventory(tracers[jobs]) == reference


def test_parallel_spans_marked_with_origin_and_unit(par_corpus):
    tracer = trace_mod.Tracer()
    with trace_mod.install(tracer):
        bound_quality(par_corpus, [GP2], include_triplewise=False, jobs=2)
    worker = [
        e
        for e in tracer.spans()
        if (e.get("attrs") or {}).get("origin") == "worker"
    ]
    assert worker
    units = sorted({e["attrs"]["unit"] for e in worker})
    assert units == list(range(len(units)))  # every unit contributed


def test_merged_spans_arrive_in_input_order(par_corpus):
    """Unit attrs must be non-decreasing in merge order (determinism)."""
    tracer = trace_mod.Tracer()
    with trace_mod.install(tracer):
        bound_quality(par_corpus, [GP2], include_triplewise=False, jobs=3)
    units = [
        e["attrs"]["unit"]
        for e in tracer.events
        if (e.get("attrs") or {}).get("origin") == "worker"
    ]
    assert units == sorted(units)


def test_corpus_map_explicit_spans_argument(par_corpus):
    """corpus_map(spans=...) collects one span per unit, serial or not."""
    superblocks = list(par_corpus)[:4]
    expected = [sb.name for sb in superblocks]
    inventories = {}
    for jobs in (1, 2):
        tracer = trace_mod.Tracer()
        out = corpus_map(
            _span_kernel,
            superblocks,
            [(i, ()) for i in range(4)],
            jobs=jobs,
            spans=tracer,
        )
        assert out == expected
        inventories[jobs] = _span_inventory(tracer)
    assert inventories[1] == inventories[2] == Counter({"test.unit": 4})


def test_spans_and_metrics_collected_together(par_corpus):
    """The observed worker path ships both deltas without cross-talk."""
    serial_reg, parallel_reg = MetricsRegistry(), MetricsRegistry()
    serial_tr, parallel_tr = trace_mod.Tracer(), trace_mod.Tracer()
    with trace_mod.install(serial_tr):
        bound_quality(
            par_corpus, [GP2], include_triplewise=False, jobs=1,
            metrics=serial_reg,
        )
    with trace_mod.install(parallel_tr):
        bound_quality(
            par_corpus, [GP2], include_triplewise=False, jobs=2,
            metrics=parallel_reg,
        )
    assert parallel_reg.counters.as_dict() == serial_reg.counters.as_dict()
    assert _span_inventory(parallel_tr) == _span_inventory(serial_tr)


# ---------------------------------------------------------------------------
# Worker-transfer round trip
# ---------------------------------------------------------------------------
def test_corpus_payload_round_trip(par_corpus):
    rebuilt = Corpus.from_payload(par_corpus.name, par_corpus.payload())
    assert len(rebuilt) == len(par_corpus)
    for original, copy in zip(par_corpus, rebuilt):
        assert copy.name == original.name
        assert copy.weights == original.weights
        assert list(copy.graph.edges()) == list(original.graph.edges())
