"""Parallel evaluation must be indistinguishable from serial evaluation.

The contract of :mod:`repro.perf` is that ``jobs`` only changes wall-clock
time: every eval entry point returns bit-identical results for ``jobs=1``,
``jobs=2`` and ``jobs=os.cpu_count()``, and the table renderings are
byte-identical strings.
"""

from __future__ import annotations

import os
import time
from collections import Counter

import pytest

from repro import cache as result_cache
from repro.eval.bounds_eval import bound_costs, bound_quality
from repro.eval.metrics import NoProfileWeights
from repro.eval.sched_eval import evaluate_corpus
from repro.eval.tables import table1, table3
from repro.machine.machine import FS4, GP2
from repro.obs import trace as trace_mod
from repro.obs.metrics import MetricsRegistry
from repro.perf import runner as runner_mod
from repro.perf.runner import ParallelRunner, WorkerCrashError, effective_jobs
from repro.perf.workers import corpus_map, is_picklable
from repro.workloads.corpus import Corpus, specint95_corpus

#: Small heuristic set keeps the scheduling fan-out fast in CI.
FAST_HEURISTICS = ("cp", "dhasy", "balance")

JOB_COUNTS = (1, 2, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def par_corpus() -> Corpus:
    """The seeded ~20-superblock corpus of the parallel-identity property."""
    return specint95_corpus(scale=20, seed=13, max_ops=36)


@pytest.fixture(scope="module", autouse=True)
def _force_pool():
    """Bypass the break-even guard: this module exercises the pool itself.

    The module corpus is deliberately small (fast CI), so the guard would
    route every ``jobs>1`` call serially and the worker-path assertions
    below would never see a worker. Guard behavior has its own tests
    (the break-even section), which disable the forcing per-test.
    """
    with runner_mod.force_parallel():
        yield
    runner_mod.shutdown_pools()


def _unforce_parallel(monkeypatch) -> None:
    """Restore default guard behavior inside the forced-pool module."""
    monkeypatch.setattr(runner_mod._FORCE_PARALLEL, "on", False, raising=False)
    monkeypatch.delenv(runner_mod.BREAK_EVEN_ENV, raising=False)


# ---------------------------------------------------------------------------
# ParallelRunner unit behavior
# ---------------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


_INIT_STATE: list[str] = []


def _set_state(tag: str) -> None:
    _INIT_STATE.append(tag)


def test_runner_preserves_input_order():
    items = list(range(57))
    expected = [x * x for x in items]
    assert ParallelRunner(jobs=1).map(_square, items) == expected
    assert ParallelRunner(jobs=3).map(_square, items) == expected
    assert ParallelRunner(jobs=3, chunk_size=5).map(_square, items) == expected


def test_runner_serial_fallback_runs_initializer_inline():
    _INIT_STATE.clear()
    runner = ParallelRunner(jobs=1, initializer=_set_state, initargs=("here",))
    assert runner.map(_square, [2, 3]) == [4, 9]
    assert _INIT_STATE == ["here"]


def test_effective_jobs_normalization():
    assert effective_jobs(None) == 1
    assert effective_jobs(1) == 1
    assert effective_jobs(5) == 5
    assert effective_jobs(0) >= 1  # all CPUs
    assert not ParallelRunner(jobs=1).parallel
    assert ParallelRunner(jobs=2).parallel


def test_corpus_map_serial_for_unpicklable_extras(par_corpus):
    """Unpicklable extras (a lambda) silently force the serial path."""
    weigher = lambda sb: {b: 1.0 for b in sb.branches}  # noqa: E731
    assert not is_picklable(weigher)
    superblocks = list(par_corpus)[:3]
    out = corpus_map(
        _name_with, superblocks, [(i, (weigher,)) for i in range(3)], jobs=2
    )
    assert out == [sb.name for sb in superblocks]


def _name_with(sb, weigher) -> str:
    return sb.name


# ---------------------------------------------------------------------------
# jobs=1 == jobs=2 == jobs=cpu_count property
# ---------------------------------------------------------------------------
def test_bound_quality_identical_across_jobs(par_corpus):
    reference = bound_quality(
        par_corpus, [GP2, FS4], include_triplewise=False, jobs=1
    )
    for jobs in JOB_COUNTS[1:]:
        assert (
            bound_quality(
                par_corpus, [GP2, FS4], include_triplewise=False, jobs=jobs
            )
            == reference
        )


def test_bound_costs_identical_across_jobs(par_corpus):
    reference = bound_costs(par_corpus, [GP2], include_triplewise=False, jobs=1)
    assert (
        bound_costs(par_corpus, [GP2], include_triplewise=False, jobs=2)
        == reference
    )


def test_evaluate_corpus_identical_across_jobs(par_corpus):
    reference = evaluate_corpus(
        par_corpus, GP2, FAST_HEURISTICS, include_triplewise=False, jobs=1
    )
    for jobs in JOB_COUNTS[1:]:
        summary = evaluate_corpus(
            par_corpus, GP2, FAST_HEURISTICS, include_triplewise=False, jobs=jobs
        )
        assert summary == reference


def test_evaluate_corpus_parallel_with_scheduling_weights(par_corpus):
    """The no-profile weights callable crosses the process boundary."""
    assert is_picklable(NoProfileWeights(1000.0))
    reference = evaluate_corpus(
        par_corpus,
        FS4,
        FAST_HEURISTICS,
        scheduling_weights=NoProfileWeights(1000.0),
        include_triplewise=False,
        jobs=1,
    )
    parallel = evaluate_corpus(
        par_corpus,
        FS4,
        FAST_HEURISTICS,
        scheduling_weights=NoProfileWeights(1000.0),
        include_triplewise=False,
        jobs=2,
    )
    assert parallel == reference


def test_tables_byte_identical_across_jobs(par_corpus):
    t1_serial = table1(
        par_corpus, (GP2,), (FS4,), include_triplewise=False, jobs=1
    ).render()
    t1_parallel = table1(
        par_corpus, (GP2,), (FS4,), include_triplewise=False, jobs=2
    ).render()
    assert t1_parallel == t1_serial

    t3_serial = table3(
        par_corpus,
        (GP2,),
        heuristics=FAST_HEURISTICS,
        include_triplewise=False,
        jobs=1,
    ).render()
    t3_parallel = table3(
        par_corpus,
        (GP2,),
        heuristics=FAST_HEURISTICS,
        include_triplewise=False,
        jobs=2,
    ).render()
    assert t3_parallel == t3_serial


# ---------------------------------------------------------------------------
# Metrics aggregation: counters survive the process boundary
# ---------------------------------------------------------------------------
def test_evaluate_corpus_counters_identical_across_jobs(par_corpus):
    """Regression: worker Counters used to be silently lost under jobs>1.

    Each worker now runs under its own registry and ships its delta back;
    the parent merge must reproduce the serial totals exactly.
    """
    registries = {}
    for jobs in JOB_COUNTS:
        registries[jobs] = reg = MetricsRegistry()
        evaluate_corpus(
            par_corpus,
            GP2,
            FAST_HEURISTICS,
            include_triplewise=False,
            jobs=jobs,
            metrics=reg,
        )
    reference = registries[1].counters.as_dict()
    assert reference  # serial run actually counted something
    assert any(name.startswith("balance.") for name in reference)
    for jobs in JOB_COUNTS[1:]:
        assert registries[jobs].counters.as_dict() == reference


def test_bound_costs_counters_identical_across_jobs(par_corpus):
    serial, parallel = MetricsRegistry(), MetricsRegistry()
    bound_costs(
        par_corpus, [GP2], include_triplewise=False, jobs=1, metrics=serial
    )
    bound_costs(
        par_corpus, [GP2], include_triplewise=False, jobs=2, metrics=parallel
    )
    reference = serial.counters.as_dict()
    # Table 2's per-bound loop-trip counters must all be present...
    assert {"table2.CP", "table2.RJ", "table2.LC", "table2.PW"} <= set(reference)
    # ...and identical after the parallel merge.
    assert parallel.counters.as_dict() == reference


# ---------------------------------------------------------------------------
# Span aggregation: worker spans survive the process boundary
# ---------------------------------------------------------------------------
def _span_inventory(tracer: trace_mod.Tracer) -> "Counter[str]":
    return Counter(e["name"] for e in tracer.spans())


def _span_kernel(sb) -> str:
    with trace_mod.span("test.unit", sb=sb.name):
        return sb.name


def test_evaluate_corpus_spans_identical_across_jobs(par_corpus):
    """Regression: worker spans used to be silently lost under jobs>1.

    Mirror of the counter-loss fix: each worker unit runs under a fresh
    tracer whose events merge back in input order, so the span inventory
    (names and counts) is identical for any job count.
    """
    tracers = {}
    for jobs in JOB_COUNTS:
        tracers[jobs] = tracer = trace_mod.Tracer()
        with trace_mod.install(tracer):
            evaluate_corpus(
                par_corpus,
                GP2,
                FAST_HEURISTICS,
                include_triplewise=False,
                jobs=jobs,
            )
    reference = _span_inventory(tracers[1])
    assert reference  # serial run recorded spans at all
    assert any(name.startswith("bounds.") for name in reference)
    for jobs in JOB_COUNTS[1:]:
        assert _span_inventory(tracers[jobs]) == reference


def test_parallel_spans_marked_with_origin_and_unit(par_corpus):
    tracer = trace_mod.Tracer()
    with trace_mod.install(tracer):
        bound_quality(par_corpus, [GP2], include_triplewise=False, jobs=2)
    worker = [
        e
        for e in tracer.spans()
        if (e.get("attrs") or {}).get("origin") == "worker"
    ]
    assert worker
    units = sorted({e["attrs"]["unit"] for e in worker})
    assert units == list(range(len(units)))  # every unit contributed


def test_merged_spans_arrive_in_input_order(par_corpus):
    """Unit attrs must be non-decreasing in merge order (determinism)."""
    tracer = trace_mod.Tracer()
    with trace_mod.install(tracer):
        bound_quality(par_corpus, [GP2], include_triplewise=False, jobs=3)
    units = [
        e["attrs"]["unit"]
        for e in tracer.events
        if (e.get("attrs") or {}).get("origin") == "worker"
    ]
    assert units == sorted(units)


def test_corpus_map_explicit_spans_argument(par_corpus):
    """corpus_map(spans=...) collects one span per unit, serial or not."""
    superblocks = list(par_corpus)[:4]
    expected = [sb.name for sb in superblocks]
    inventories = {}
    for jobs in (1, 2):
        tracer = trace_mod.Tracer()
        out = corpus_map(
            _span_kernel,
            superblocks,
            [(i, ()) for i in range(4)],
            jobs=jobs,
            spans=tracer,
        )
        assert out == expected
        inventories[jobs] = _span_inventory(tracer)
    assert inventories[1] == inventories[2] == Counter({"test.unit": 4})


def test_spans_and_metrics_collected_together(par_corpus):
    """The observed worker path ships both deltas without cross-talk."""
    serial_reg, parallel_reg = MetricsRegistry(), MetricsRegistry()
    serial_tr, parallel_tr = trace_mod.Tracer(), trace_mod.Tracer()
    with trace_mod.install(serial_tr):
        bound_quality(
            par_corpus, [GP2], include_triplewise=False, jobs=1,
            metrics=serial_reg,
        )
    with trace_mod.install(parallel_tr):
        bound_quality(
            par_corpus, [GP2], include_triplewise=False, jobs=2,
            metrics=parallel_reg,
        )
    assert parallel_reg.counters.as_dict() == serial_reg.counters.as_dict()
    assert _span_inventory(parallel_tr) == _span_inventory(serial_tr)


# ---------------------------------------------------------------------------
# Worker-transfer round trip
# ---------------------------------------------------------------------------
def test_corpus_payload_round_trip(par_corpus):
    rebuilt = Corpus.from_payload(par_corpus.name, par_corpus.payload())
    assert len(rebuilt) == len(par_corpus)
    for original, copy in zip(par_corpus, rebuilt):
        assert copy.name == original.name
        assert copy.weights == original.weights
        assert list(copy.graph.edges()) == list(original.graph.edges())


# ---------------------------------------------------------------------------
# Persistent pool lifecycle
# ---------------------------------------------------------------------------
def _name_of(sb) -> str:
    return sb.name


def _worker_pid(sb) -> int:
    return os.getpid()


def _die_on(sb, victim: str) -> str:
    if sb.name == victim:
        os._exit(3)
    return sb.name


def test_pool_reused_across_consecutive_corpus_maps(par_corpus):
    runner_mod.shutdown_pools()
    superblocks = list(par_corpus)[:8]
    units = [(i, ()) for i in range(len(superblocks))]
    first = set(corpus_map(_worker_pid, superblocks, units, jobs=2))
    stats_first = runner_mod.last_dispatch_stats()
    pool_obj = runner_mod._POOL
    second = set(corpus_map(_worker_pid, superblocks, units, jobs=2))
    stats_second = runner_mod.last_dispatch_stats()
    assert stats_first.mode == stats_second.mode == "pool"
    assert os.getpid() not in first | second  # units ran in real workers
    assert not stats_first.pool_reused
    assert stats_second.pool_reused  # the same warm pool served both calls
    assert runner_mod._POOL is pool_obj
    assert pool_obj.maps_served == 2


def test_pool_respawns_when_jobs_or_corpus_change(par_corpus):
    superblocks = list(par_corpus)[:8]
    units = [(i, ()) for i in range(len(superblocks))]
    corpus_map(_name_of, superblocks, units, jobs=2)
    corpus_map(_name_of, superblocks, units, jobs=3)
    assert not runner_mod.last_dispatch_stats().pool_reused
    corpus_map(_name_of, superblocks[:5], units[:5], jobs=3)
    assert not runner_mod.last_dispatch_stats().pool_reused


def test_worker_death_mid_batch_raises_clear_error(par_corpus):
    superblocks = list(par_corpus)[:6]
    victim = superblocks[3].name
    units = [(i, (victim,)) for i in range(len(superblocks))]
    with pytest.raises(WorkerCrashError, match="worker process died"):
        corpus_map(_die_on, superblocks, units, jobs=2)
    # The broken pool was evicted: the next call spawns fresh workers and
    # succeeds instead of hanging or reusing dead processes.
    out = corpus_map(
        _name_of, superblocks, [(i, ()) for i in range(len(superblocks))], jobs=2
    )
    assert out == [sb.name for sb in superblocks]
    stats = runner_mod.last_dispatch_stats()
    assert stats.mode == "pool"
    assert not stats.pool_reused


def test_dispatch_stats_expose_pack_and_batch_accounting(par_corpus):
    superblocks = list(par_corpus)
    units = [(i, ()) for i in range(len(superblocks))]
    corpus_map(_name_of, superblocks, units, jobs=2)
    stats = runner_mod.last_dispatch_stats()
    assert stats.mode == "pool"
    assert stats.units == len(units)
    assert stats.batches >= 1
    assert stats.payload_bytes > 0
    assert stats.wall_seconds > 0.0
    assert stats.busy_seconds >= 0.0
    assert 0.0 <= stats.utilization <= 1.0
    assert stats.overhead_seconds >= 0.0


# ---------------------------------------------------------------------------
# Break-even guard: small runs never pay dispatch overhead
# ---------------------------------------------------------------------------
def test_small_run_falls_back_to_serial(par_corpus, monkeypatch):
    _unforce_parallel(monkeypatch)
    reference = bound_quality(
        par_corpus, [GP2], include_triplewise=False, jobs=1
    )
    assert (
        bound_quality(par_corpus, [GP2], include_triplewise=False, jobs=2)
        == reference
    )
    stats = runner_mod.last_dispatch_stats()
    assert stats.mode == "serial-fallback"
    assert 0 < stats.cost_points < runner_mod.break_even_points()


def test_break_even_env_override_enables_pool(par_corpus, monkeypatch):
    _unforce_parallel(monkeypatch)
    monkeypatch.setenv(runner_mod.BREAK_EVEN_ENV, "0")
    bound_quality(par_corpus, [GP2], include_triplewise=False, jobs=2)
    assert runner_mod.last_dispatch_stats().mode == "pool"


def test_quick_run_jobs2_wall_clock_close_to_serial(monkeypatch):
    """Satellite acceptance: jobs=2 on a quick run is <= 1.1x serial wall.

    The guard routes both sides down the identical serial code path, so
    the only possible difference is timer noise — allow 10% relative plus
    a small absolute slack for a run this short.
    """
    _unforce_parallel(monkeypatch)
    corpus = specint95_corpus(scale=12, seed=7, max_ops=32)

    def best_wall(jobs: int) -> float:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            table1(corpus, (GP2,), (FS4,), include_triplewise=False, jobs=jobs)
            best = min(best, time.perf_counter() - t0)
        return best

    serial = best_wall(1)
    parallel = best_wall(2)
    assert runner_mod.last_dispatch_stats().mode == "serial-fallback"
    assert parallel <= serial * 1.1 + 0.05, (
        f"jobs=2 took {parallel:.3f}s vs serial {serial:.3f}s"
    )


# ---------------------------------------------------------------------------
# Cache interactions under the pool: jobs x cold/warm identity
# ---------------------------------------------------------------------------
def _quality_with_counters(corpus, jobs):
    registry = MetricsRegistry()
    quality = bound_quality(
        corpus, [GP2], include_triplewise=False, jobs=jobs, metrics=registry
    )
    return quality, registry.counters.as_dict()


def test_cache_state_identical_across_jobs_and_temperature(
    par_corpus, tmp_path
):
    """Results + counters are bit-identical for jobs in {1,2,8} x cold/warm."""
    reference = _quality_with_counters(par_corpus, jobs=1)
    for jobs in (1, 2, 8):
        cache_dir = tmp_path / f"jobs{jobs}"
        cold_cache = result_cache.ResultCache(cache_dir)
        with result_cache.install(cold_cache):
            cold = _quality_with_counters(par_corpus, jobs=jobs)
        assert cold == reference
        assert cold_cache.stats.hits == 0
        # Every corpus unit plus the BoundSuite-internal steps it runs:
        assert cold_cache.stats.writes >= len(par_corpus)
        warm_cache = result_cache.ResultCache(cache_dir)
        with result_cache.install(warm_cache):
            warm = _quality_with_counters(par_corpus, jobs=jobs)
        assert warm == reference
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits >= len(par_corpus)


def test_cache_written_by_pool_readable_at_any_job_count(par_corpus, tmp_path):
    """Lookups are parent-side: entries written under jobs=8 serve any jobs."""
    reference = _quality_with_counters(par_corpus, jobs=1)
    cold_cache = result_cache.ResultCache(tmp_path)
    with result_cache.install(cold_cache):
        assert _quality_with_counters(par_corpus, jobs=8) == reference
    assert cold_cache.stats.writes >= len(par_corpus)
    for jobs in (1, 2, 8):
        warm_cache = result_cache.ResultCache(tmp_path)
        with result_cache.install(warm_cache):
            assert _quality_with_counters(par_corpus, jobs=jobs) == reference
        assert warm_cache.stats.misses == 0
