"""Tests for the corpus characterization module."""

import pytest

from repro.ir.examples import figure1
from repro.workloads.corpus import Corpus
from repro.workloads.stats import characterization_report, characterize, shape_of


class TestShapeOf:
    def test_figure1_shape(self):
        sb = figure1()
        shape = shape_of(sb)
        assert shape.ops == 17
        assert shape.exits == 2
        assert shape.critical_path == 8  # EarlyDC 7 for the jump, +1 cycle
        assert shape.available_ilp == pytest.approx(17 / 8)
        assert shape.mem_fraction == 0.0

    def test_speculatable_fraction_figure1(self):
        """Figure 1's chain/filler ops are all movable above branch 3."""
        shape = shape_of(figure1())
        assert shape.speculatable_fraction == 1.0

    def test_single_exit_block_has_no_speculation(self, single_exit_sb):
        shape = shape_of(single_exit_sb)
        assert shape.speculatable_fraction == 0.0
        assert shape.exits == 1


class TestCharacterize:
    def test_aggregates(self, tiny_corpus):
        stats = characterize(tiny_corpus)
        assert stats["superblocks"] == len(tiny_corpus)
        assert stats["max_ops"] >= stats["mean_ops"]
        assert 0.0 <= stats["mem_fraction"] <= 1.0
        assert 0.0 <= stats["speculatable_fraction"] <= 1.0
        assert stats["mean_available_ilp"] > 1.0  # superblocks expose ILP

    def test_empty_corpus(self):
        assert characterize(Corpus("empty")) == {}

    def test_report_text(self, tiny_corpus):
        text = characterization_report(tiny_corpus)
        assert "corpus characterization" in text
        assert "speculatable_fraction" in text
