"""Tests for the extension experiments (per-benchmark, noise, G* family)."""

import pytest

from repro.eval.extensions import (
    gstar_secondary_table,
    per_benchmark_table,
    profile_noise_sweep,
)
from repro.machine.machine import FS4, GP2
from repro.schedulers.base import get_scheduler
from repro.schedulers.schedule import validate_schedule


class TestPerBenchmark:
    def test_covers_present_benchmarks(self, tiny_corpus):
        t = per_benchmark_table(tiny_corpus, GP2)
        names = {row[0] for row in t.rows}
        assert "gcc" in names
        total = sum(row[1] for row in t.rows)
        assert total == len(tiny_corpus)

    def test_render(self, tiny_corpus):
        text = per_benchmark_table(tiny_corpus, GP2).render()
        assert "Per-benchmark" in text and "BALANCE" in text


class TestProfileNoise:
    def test_zero_noise_matches_clean_run(self, tiny_corpus):
        t = profile_noise_sweep(
            tiny_corpus, FS4, noise_levels=(0.0,), heuristics=("balance",)
        )
        assert len(t.rows) == 1

    def test_sweep_monotone_in_expectation(self, tiny_corpus):
        """Heavy noise should not *improve* Balance (allowing jitter)."""
        t = profile_noise_sweep(
            tiny_corpus,
            FS4,
            heuristics=("balance",),
            noise_levels=(0.0, 1.0),
            seed=3,
        )
        clean = t.data[0.0]["balance"]
        noisy = t.data[1.0]["balance"]
        assert noisy >= clean - 0.5  # small jitter tolerance

    def test_rows_per_level(self, tiny_corpus):
        t = profile_noise_sweep(
            tiny_corpus, FS4, noise_levels=(0.0, 0.5, 1.0),
            heuristics=("dhasy", "balance"),
        )
        assert len(t.rows) == 3
        assert t.headers == ["Profile noise", "DHASY", "BALANCE"]


class TestGstarFamily:
    def test_all_secondaries_schedule_validly(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:5]:
            for secondary in ("cp", "sr", "dhasy"):
                s = get_scheduler("gstar")(sb, GP2, secondary=secondary)
                validate_schedule(sb, GP2, s)

    def test_variant_names(self, two_exit_sb):
        s = get_scheduler("gstar")(two_exit_sb, GP2, secondary="sr")
        assert s.heuristic == "gstar[sr]"
        s = get_scheduler("gstar")(two_exit_sb, GP2)
        assert s.heuristic == "gstar"

    def test_unknown_secondary_rejected(self, two_exit_sb):
        with pytest.raises(ValueError, match="unknown G"):
            get_scheduler("gstar")(two_exit_sb, GP2, secondary="zz")

    def test_family_table(self, tiny_corpus):
        t = gstar_secondary_table(tiny_corpus, GP2)
        assert len(t.rows) == 3
        # The "vs best" column is 0 for the winner.
        assert min(row[2] for row in t.rows) == pytest.approx(0.0)
