"""Tests for text-table formatting and the instrumentation counters."""

from repro.bounds.instrumentation import Counters
from repro.eval.formatting import format_percent, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["Name", "Value"],
            [["alpha", 1.5], ["b", 22.25]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert "Name" in lines[2]
        assert "1.50" in text and "22.25" in text

    def test_first_column_left_aligned(self):
        text = format_table(["A", "B"], [["x", 1], ["long", 2]])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("x ")
        assert rows[1].startswith("long")

    def test_numbers_right_aligned(self):
        text = format_table(["A", "B"], [["x", 5], ["y", 500]])
        lines = text.splitlines()
        assert lines[-2].endswith("  5") or lines[-2].endswith("5")
        assert lines[-1].endswith("500")

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text

    def test_format_percent(self):
        assert format_percent(12.3456) == "12.35%"
        assert format_percent(12.3456, digits=1) == "12.3%"


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("a.x")
        c.add("a.y", 4)
        assert c.get("a.x") == 1
        assert c.get("missing") == 0

    def test_prefix_totals(self):
        c = Counters()
        c.add("rj.place", 3)
        c.add("rj.scan", 2)
        c.add("lc.place", 7)
        assert c.total("rj") == 5
        assert c.total() == 12
        # Prefix matching is dotted: "l" does not match "lc.*".
        assert c.total("l") == 0

    def test_exact_name_counts_as_prefix(self):
        c = Counters()
        c.add("hu", 2)
        assert c.total("hu") == 2

    def test_merge_and_clear(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        a.merge(b)
        assert a.get("x") == 3
        a.clear()
        assert a.total() == 0

    def test_as_dict(self):
        c = Counters()
        c.add("k", 9)
        assert c.as_dict() == {"k": 9}
