"""Anomaly attribution: robust z-scores, block outliers, history flags.

The seeded-outlier cases are the pinned acceptance fixtures: one block
with a wide bound gap among tight peers must be flagged ``loose-bound``
(and surface in the dashboard — tests/test_dashboard.py reuses the same
fixture), while uniform populations and short histories must stay quiet.
"""

from __future__ import annotations

import pytest

from repro.obs import anomaly


def _block(sb: str, gap: float, solve: float = 0.001) -> dict:
    """A block row whose best-WCT gap over the tightest bound is ``gap``%."""
    return {
        "sb": sb,
        "machine": "FS4",
        "ops": 20,
        "tightest": 100.0,
        "wct": {"balance": 100.0 * (1 + gap / 100.0)},
        "solve_s": solve,
    }


def seeded_outlier_record(run_id: str = "seeded1") -> dict:
    """Seven tight blocks plus one with a 50% gap: the pinned outlier."""
    blocks = [_block(f"sb{i:02d}", gap=1.0 + 0.1 * i) for i in range(7)]
    blocks.append(_block("gcc.sb_outlier", gap=50.0))
    return {
        "schema": 1,
        "run_id": run_id,
        "timestamp": 1000.0,
        "command": "table1",
        "wall_seconds": 2.0,
        "blocks": blocks,
    }


class TestRobustZ:
    def test_known_population(self):
        values = [1.0, 1.0, 2.0, 2.0, 100.0]
        scores = anomaly.robust_z_scores(values)
        # median 2, MAD 1: the wild point scores 0.6745 * 98
        assert scores[-1] == pytest.approx(0.6745 * 98.0)
        assert all(abs(s) <= 0.6745 for s in scores[:-1])

    def test_degenerate_mad_falls_back_to_pstdev(self):
        # MAD is 0 (majority identical) but the spread is real
        values = [1.0, 1.0, 1.0, 1.0, 9.0]
        scores = anomaly.robust_z_scores(values)
        assert scores[-1] > 0  # still separable, not silently zeroed

    def test_constant_population_all_zero(self):
        assert anomaly.robust_z_scores([3.0] * 5) == [0.0] * 5

    def test_tiny_populations_all_zero(self):
        assert anomaly.robust_z_scores([]) == []
        assert anomaly.robust_z_scores([7.0]) == [0.0]


class TestBlockAnomalies:
    def test_seeded_loose_bound_outlier_flagged(self):
        found = anomaly.block_anomalies(seeded_outlier_record())
        loose = [a for a in found if a.kind == "loose-bound"]
        assert len(loose) == 1
        flag = loose[0]
        assert flag.subject == "gcc.sb_outlier@FS4"
        assert flag.scope == "block"
        assert flag.value == pytest.approx(50.0)
        assert flag.score > anomaly.DEFAULT_Z
        assert "gap 50.00%" in flag.detail

    def test_uniform_population_stays_quiet(self):
        record = seeded_outlier_record()
        record["blocks"] = [_block(f"sb{i}", gap=2.0) for i in range(8)]
        assert anomaly.block_anomalies(record) == []

    def test_fewer_than_three_rows_never_flag(self):
        record = seeded_outlier_record()
        record["blocks"] = [_block("a", 1.0), _block("b", 90.0)]
        assert anomaly.block_anomalies(record) == []

    def test_slow_solve_outlier_flagged(self):
        record = seeded_outlier_record()
        record["blocks"] = [
            _block(f"sb{i}", gap=2.0, solve=0.001 + 0.0001 * i)
            for i in range(7)
        ] + [_block("sb_slow", gap=2.0, solve=0.5)]
        found = anomaly.block_anomalies(record)
        assert [a.kind for a in found] == ["slow-solve"]
        assert found[0].subject == "sb_slow@FS4"

    def test_low_side_never_flags(self):
        # One unusually *tight* block is good news, not an anomaly
        record = seeded_outlier_record()
        record["blocks"] = [
            _block(f"sb{i}", gap=50.0) for i in range(7)
        ] + [_block("sb_tight", gap=0.1)]
        assert anomaly.block_anomalies(record) == []


def _run(
    run_id: str,
    wall: float = 1.0,
    hit_rate: float | None = None,
    utilization: float | None = None,
    command: str = "table1",
) -> dict:
    record = {
        "schema": 1,
        "run_id": run_id,
        "timestamp": 1000.0,
        "command": command,
        "wall_seconds": wall,
        "blocks": [],
    }
    if hit_rate is not None:
        record["cache"] = {"hits": 1, "misses": 1, "hit_rate": hit_rate}
    if utilization is not None:
        record["dispatch"] = {
            "mode": "pool", "jobs": 4, "utilization": utilization,
        }
    return record


class TestHistoryAnomalies:
    def test_wall_regression_fires(self):
        prior = [_run(f"r{i}", wall=1.0 + 0.01 * i) for i in range(6)]
        target = _run("rT", wall=10.0)
        found = anomaly.history_anomalies(prior + [target], target)
        kinds = [a.kind for a in found]
        assert "wall-regression" in kinds
        flag = found[kinds.index("wall-regression")]
        assert flag.scope == "run" and flag.subject == "table1"

    def test_short_history_stays_quiet(self):
        prior = [_run(f"r{i}", wall=1.0) for i in range(anomaly.MIN_HISTORY - 1)]
        target = _run("rT", wall=50.0)
        assert anomaly.history_anomalies(prior + [target], target) == []

    def test_other_commands_do_not_count_as_history(self):
        prior = [_run(f"r{i}", wall=1.0, command="bench") for i in range(8)]
        target = _run("rT", wall=50.0)  # a table1 run with no table1 priors
        assert anomaly.history_anomalies(prior + [target], target) == []

    def test_cache_cold_fires_on_hit_rate_drop(self):
        prior = [_run(f"r{i}", hit_rate=0.95) for i in range(5)]
        target = _run("rT", hit_rate=0.05)
        found = anomaly.history_anomalies(prior + [target], target)
        cold = [a for a in found if a.kind == "cache-cold"]
        assert len(cold) == 1
        assert "cold or invalidated" in cold[0].detail

    def test_small_hit_rate_dip_stays_quiet(self):
        prior = [_run(f"r{i}", hit_rate=0.95) for i in range(5)]
        target = _run("rT", hit_rate=0.85)  # within CACHE_DROP
        found = anomaly.history_anomalies(prior + [target], target)
        assert all(a.kind != "cache-cold" for a in found)

    def test_low_utilization_fires_in_pool_mode_only(self):
        prior = [_run(f"r{i}", utilization=0.8) for i in range(5)]
        target = _run("rT", utilization=0.1)
        found = anomaly.history_anomalies(prior + [target], target)
        assert [a.kind for a in found] == ["low-utilization"]
        serial = _run("rS", utilization=0.1)
        serial["dispatch"]["mode"] = "serial"
        assert anomaly.history_anomalies(prior + [serial], serial) == []


class TestFindAndRender:
    def test_find_defaults_to_newest_record(self):
        records = [_run(f"r{i}") for i in range(5)] + [seeded_outlier_record()]
        found = anomaly.find_anomalies(records)
        assert any(a.kind == "loose-bound" for a in found)

    def test_empty_ledger_yields_nothing(self):
        assert anomaly.find_anomalies([]) == []

    def test_render_lists_each_flag(self):
        found = anomaly.find_anomalies([seeded_outlier_record()])
        text = anomaly.render_anomalies(found)
        assert "[loose-bound] gcc.sb_outlier@FS4" in text
        assert anomaly.render_anomalies([]) == "no anomalies flagged"

    def test_to_dict_round_trips_fields(self):
        (flag,) = [
            a
            for a in anomaly.block_anomalies(seeded_outlier_record())
            if a.kind == "loose-bound"
        ]
        payload = flag.to_dict()
        assert payload["kind"] == "loose-bound"
        assert payload["subject"] == "gcc.sb_outlier@FS4"
        assert payload["score"] == flag.score
