"""The incremental Pairwise sweep must match the naive per-separation build.

``PairwiseBounder(incremental=True)`` (the default) rebuilds each
separation's ``late`` map from the cached relative frame and warm-starts
consecutive separations; ``incremental=False`` keeps the original
three-term min/max construction per node per separation. The two must
produce identical ``PairBound`` results — curves included — on the
paper's worked examples and on random superblocks.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bounds.pairwise import PairwiseBounder
from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.machine.machine import FS4, GP1, GP2
from repro.workloads.corpus import specint95_corpus


def _curves_for(sb, machine, incremental: bool):
    suite = BoundSuite(sb, machine)
    bounder = PairwiseBounder(
        sb.graph,
        machine,
        suite.early_rc,
        suite.late_rc,
        sb.branch_latency,
        incremental=incremental,
    )
    weights = sb.weights
    return {
        (i, j): bounder.pair_bound(i, j, weights[i], weights[j])
        for i, j in itertools.combinations(sb.branches, 2)
        if sb.graph.is_ancestor(i, j)
    }


@pytest.mark.parametrize(
    "example", [figure1, figure2, figure3, figure4], ids=lambda f: f.__name__
)
@pytest.mark.parametrize("machine", [GP1, GP2, FS4], ids=lambda m: m.name)
def test_incremental_matches_naive_on_paper_examples(example, machine):
    sb = example()
    assert _curves_for(sb, machine, True) == _curves_for(sb, machine, False)


def test_incremental_matches_naive_on_random_graphs():
    """50 random seeded superblocks, full PairBound equality per pair."""
    corpus = specint95_corpus(scale=50, seed=99, max_ops=30)
    checked_pairs = 0
    for sb in list(corpus)[:50]:
        for machine in (GP2, FS4):
            fast = _curves_for(sb, machine, True)
            naive = _curves_for(sb, machine, False)
            assert fast == naive, f"{sb.name} on {machine.name}"
            checked_pairs += len(fast)
    assert checked_pairs > 0


def test_incremental_is_default_and_used_by_suite():
    """BoundSuite's pair bounds come from the incremental path."""
    sb = figure2()
    suite = BoundSuite(sb, GP2)
    bounder = PairwiseBounder(
        sb.graph, GP2, suite.early_rc, suite.late_rc, sb.branch_latency
    )
    assert bounder._incremental  # default on
    weights = sb.weights
    for (i, j), pb in suite.pair_bounds.items():
        assert bounder.pair_bound(i, j, weights[i], weights[j]) == pb
