"""Unit tests for the BoundSuite and superblock-level aggregation."""

import pytest

from repro.bounds.superblock_bounds import BOUND_NAMES, BoundSuite
from repro.ir.examples import figure1, figure2, figure4
from repro.machine.machine import FS4, GP1, GP2
from repro.schedulers.base import get_scheduler
from repro.schedulers.optimal import SearchBudgetExceeded


class TestBoundSuite:
    def test_all_families_computed(self, two_exit_sb):
        res = BoundSuite(two_exit_sb, GP2).compute()
        assert set(res.wct) == set(BOUND_NAMES)
        assert set(res.branch_bounds) == {"CP", "Hu", "RJ", "LC"}

    def test_dominance_chain(self, tiny_corpus):
        """CP <= RJ <= LC <= PW <= TW <= tightest, and Hu <= RJ-family."""
        for sb in tiny_corpus:
            for machine in (GP1, GP2, FS4):
                res = BoundSuite(sb, machine).compute()
                assert res.wct["CP"] <= res.wct["RJ"] + 1e-9
                assert res.wct["CP"] <= res.wct["Hu"] + 1e-9
                assert res.wct["RJ"] <= res.wct["LC"] + 1e-9
                assert res.wct["LC"] <= res.wct["PW"] + 1e-9
                assert res.wct["PW"] <= res.wct["TW"] + 1e-9
                assert res.tightest == max(res.wct.values())

    def test_single_branch_degenerates_to_lc(self, single_exit_sb):
        res = BoundSuite(single_exit_sb, GP2).compute()
        assert res.wct["PW"] == res.wct["LC"]
        assert res.wct["TW"] == res.wct["LC"]

    def test_gap_percent(self, two_exit_sb):
        res = BoundSuite(two_exit_sb, GP2).compute()
        assert res.gap_percent("CP") >= 0
        tight_name = max(res.wct, key=res.wct.get)
        assert res.gap_percent(tight_name) == pytest.approx(0.0)

    def test_pairwise_tightens_figure4(self):
        """Figure 4 has a real tradeoff: PW beats the naive LC aggregate."""
        sb = figure4(0.3)
        res = BoundSuite(sb, GP2).compute()
        assert res.wct["PW"] > res.wct["LC"]

    def test_pairwise_equals_lc_when_conflict_free(self):
        """Figure 1 has no tradeoff: PW degenerates to the LC aggregate."""
        sb = figure1()
        res = BoundSuite(sb, GP2).compute()
        assert res.wct["PW"] == pytest.approx(res.wct["LC"])

    def test_theorem3_average_valid_vs_optimal(self, tiny_corpus):
        for sb in tiny_corpus:
            if sb.num_operations > 12:
                continue
            try:
                optimal = get_scheduler("optimal")(sb, GP2, budget=200_000)
            except SearchBudgetExceeded:
                continue
            res = BoundSuite(sb, GP2).compute()
            assert res.tightest <= optimal.wct + 1e-9

    def test_suite_caches_shared_intermediates(self, two_exit_sb):
        suite = BoundSuite(two_exit_sb, GP2)
        assert suite.early_rc is suite.early_rc
        assert suite.late_rc is suite.late_rc
        assert suite.pair_bounds is suite.pair_bounds

    def test_pair_cap_switches_to_lp(self, tiny_corpus):
        sb = max(tiny_corpus, key=lambda s: s.num_branches)
        if sb.num_branches < 3:
            pytest.skip("corpus has no branchy superblock")
        capped = BoundSuite(sb, GP2, pair_cap=1, include_triplewise=False)
        res = capped.compute()
        assert not res.pairs_complete
        # Still a valid bound: sandwiched between LC and the full PW.
        full = BoundSuite(sb, GP2, include_triplewise=False).compute()
        assert res.wct["LC"] - 1e-9 <= res.wct["PW"] <= full.tightest + 1e-9

    def test_disable_pairwise(self, two_exit_sb):
        res = BoundSuite(two_exit_sb, GP2, include_pairwise=False).compute()
        assert res.wct["PW"] == res.wct["LC"]
        assert res.pair_bounds == {}
