"""Benchmark: regenerate the Figure 1-4 example analyses.

Each figure's narrative is re-derived exactly:

* Figure 1 — CP delays the side exit on the 2-wide machine; SR (and
  Balance) schedule both exits at their bounds.
* Figure 2 — Observation 1: Balance schedules operations with compatible
  needs ({0|1|2} plus op 4 in cycle 0) and both branches hit their bounds.
* Figure 3 — Observation 2: only the resource-aware LateRC forces op 4
  into cycle 0; Balance is optimal, the DC-bound variant is not.
* Figure 4 — Observation 3: the optimal schedule (and Balance's) flips
  between (side=5, final=9) and (side=3, final=11) as P crosses 0.5,
  guided by the Pairwise tradeoff curve.
"""

from repro.bounds.superblock_bounds import BoundSuite
from repro.eval.figures import figure_schedules
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.machine.machine import GP2
from repro.schedulers.base import schedule


def _analyze() -> dict:
    out: dict = {}
    out["fig1_cp"] = schedule(figure1(), GP2, "cp")
    out["fig1_sr"] = schedule(figure1(), GP2, "sr")
    out["fig2_balance"] = schedule(figure2(), GP2, "balance")
    out["fig3_balance"] = schedule(figure3(), GP2, "balance")
    out["fig3_help"] = schedule(figure3(), GP2, "help")
    out["fig4"] = {
        p: schedule(figure4(p), GP2, "balance") for p in (0.2, 0.45, 0.55, 0.8)
    }
    out["fig4_pair"] = BoundSuite(figure4(0.3), GP2).compute().pair_bounds[(6, 18)]
    out["text"] = figure_schedules()
    return out


def test_paper_figures(benchmark, publish):
    out = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    publish("figures_examples", out["text"])

    # Figure 1: CP delays the side exit by >= 3 cycles; SR is optimal.
    assert out["fig1_cp"].issue[3] - out["fig1_sr"].issue[3] >= 3
    assert (out["fig1_sr"].issue[3], out["fig1_sr"].issue[16]) == (2, 8)
    # Figure 2: compatible needs.
    assert out["fig2_balance"].issue[4] == 0
    assert (out["fig2_balance"].issue[3], out["fig2_balance"].issue[6]) == (2, 3)
    # Figure 3: Observation 2.
    assert out["fig3_balance"].issue[9] == 5
    assert out["fig3_help"].wct > out["fig3_balance"].wct
    # Figure 4: regime flip across P = 0.5.
    for p in (0.2, 0.45):
        s = out["fig4"][p]
        assert (s.issue[6], s.issue[18]) == (5, 9)
    for p in (0.55, 0.8):
        s = out["fig4"][p]
        assert (s.issue[6], s.issue[18]) == (3, 11)
    # The pairwise curve spans both regimes.
    curve = out["fig4_pair"].curve
    assert {(pt.x, pt.y) for pt in curve} >= {(5, 9), (3, 11)}
