"""Robustness benchmark: do the paper's conclusions survive a different
workload route?

The main corpus synthesizes superblock dependence graphs directly; this
bench derives superblocks through the full CFG -> trace -> formation
pipeline (register dataflow, memory ordering, store speculation barriers,
tail duplication) and re-checks the Table 3 headline: Balance is the best
primary heuristic, and Help is close behind.
"""

from repro.eval.formatting import format_table
from repro.eval.sched_eval import evaluate_corpus
from repro.machine.machine import FS4, FS6, GP2
from repro.workloads.cfg_corpus import cfg_corpus

HEUR = ("sr", "cp", "gstar", "dhasy", "help", "balance")


def test_table3_shape_on_cfg_corpus(benchmark, publish):
    corpus = cfg_corpus(functions=16, seed=1999, segments=6)

    def run():
        rows = []
        summaries = {}
        for machine in (GP2, FS4, FS6):
            summary = evaluate_corpus(
                corpus, machine, HEUR, include_triplewise=False
            )
            summaries[machine.name] = summary
            rows.append(
                [machine.name]
                + [summary.slowdown_percent(h) for h in HEUR]
            )
        return rows, summaries

    rows, summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = corpus.stats()
    text = format_table(
        ["Machine"] + [h.upper() for h in HEUR],
        rows,
        f"CFG-derived corpus ({stats['superblocks']:.0f} superblocks from "
        f"16 functions): slowdown vs tightest bound (%)",
    )
    publish("cfg_robustness", text)

    for machine in ("GP2", "FS4", "FS6"):
        s = summaries[machine]
        balance = s.slowdown_percent("balance")
        field = [s.slowdown_percent(h) for h in HEUR]
        # Balance within the best two heuristics on every machine.
        assert sorted(field).index(balance) <= 1
