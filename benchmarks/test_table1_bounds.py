"""Benchmark: regenerate Table 1 — bound quality vs the tightest bound.

Paper claims to reproduce in *shape*:

* CP is far weaker than every resource-aware bound;
* RJ and LC are close on average but can be far off in the worst case
  (paper: max gaps 9.63-24.94%);
* Pairwise shrinks the worst-case gap dramatically (paper: 2.26-5.65%);
* Triplewise is within rounding of the tightest bound everywhere.
"""

from repro.eval.tables import table1


def test_table1_bound_quality(benchmark, corpus, publish):
    result = benchmark.pedantic(
        lambda: table1(corpus), rounds=1, iterations=1
    )
    publish("table1_bounds", result.render())

    for group in ("GP", "FS"):
        quality = result.data[group]
        # Dominance shape: CP weakest, TW tightest (zero gap by definition
        # of being part of the tightest combination).
        assert quality["CP"].avg_gap_percent >= quality["RJ"].avg_gap_percent
        assert quality["RJ"].avg_gap_percent >= quality["LC"].avg_gap_percent - 1e-9
        assert quality["LC"].avg_gap_percent >= quality["PW"].avg_gap_percent - 1e-9
        assert quality["TW"].avg_gap_percent == 0.0
        # Pairwise's worst case improves on RJ/LC's worst case.
        assert quality["PW"].max_gap_percent <= quality["LC"].max_gap_percent + 1e-9
