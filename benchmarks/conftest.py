"""Shared fixtures for the paper-table benchmarks.

Each benchmark regenerates one table or figure of the paper on a synthetic
SPECint95 corpus and

* times the computation (pytest-benchmark, single round — these are
  experiments, not microbenchmarks), and
* writes the regenerated table to ``results/<name>.txt`` and prints it.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — corpus size (default 96 superblocks; the paper
  used 6615 — raise this when runtime permits).
* ``REPRO_BENCH_SEED`` — corpus seed (default 1999).
* ``REPRO_BENCH_MAX_OPS`` — per-superblock op cap (default 100).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads.corpus import Corpus, specint95_corpus

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "96"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
BENCH_MAX_OPS = int(os.environ.get("REPRO_BENCH_MAX_OPS", "100"))


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    """The shared benchmark corpus."""
    return specint95_corpus(
        scale=BENCH_SCALE, seed=BENCH_SEED, max_ops=BENCH_MAX_OPS
    )


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A reduced corpus for the quadratic-cost experiments (Tables 2, 6, 7)."""
    return specint95_corpus(
        scale=max(8, BENCH_SCALE // 2), seed=BENCH_SEED, max_ops=BENCH_MAX_OPS
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Write a rendered table/figure to results/ and echo it."""

    def _publish(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        print(f"[saved to {path}]")

    return _publish
