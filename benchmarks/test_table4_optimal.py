"""Benchmark: regenerate Table 4 — optimally scheduled nontrivial superblocks.

Paper claims to reproduce in shape:

* Balance schedules the largest fraction of nontrivial superblocks at the
  bound among the primary heuristics;
* the DHASY-first strategy (fall back to Balance only when DHASY misses
  the bound) achieves Balance-class optimality while rescheduling only a
  minority of superblocks (the paper: ~1/5).
"""

from repro.eval.tables import ALL_MACHINES, table4

HEUR = ("sr", "cp", "gstar", "dhasy", "help", "balance")


def test_table4_optimality(benchmark, corpus, publish):
    result = benchmark.pedantic(
        lambda: table4(corpus, heuristics=HEUR), rounds=1, iterations=1
    )
    publish("table4_optimal", result.render())

    summaries = result.data["summaries"]
    strategy = result.data["strategy"]
    for machine in ALL_MACHINES:
        s = summaries[machine.name]
        balance_frac = s.optimal_fraction("balance", nontrivial_only=True)
        for h in ("sr", "cp", "gstar"):
            assert balance_frac >= s.optimal_fraction(h, nontrivial_only=True) - 1e-9
        # The combined strategy reschedules only a fraction of superblocks
        # (the paper reports ~1/5 on its corpus; our synthetic corpus over
        # six machines is harder, so the bar is looser).
        assert strategy[machine.name]["rescheduled_percent"] <= 75.0
