"""Benchmark: regenerate Table 6 — cost of the scheduling heuristics.

Paper claims to reproduce in shape:

* CP and SR are the cheapest schedulers;
* Help and Balance cost more (their empirical complexity is O(BVR)), with
  Balance the most expensive primary heuristic;
* updating the dynamic bounds once per cycle instead of once per
  operation reduces Balance's cost substantially.
"""

from repro.eval.tables import table6
from repro.machine.machine import FS4


def test_table6_scheduler_cost(benchmark, small_corpus, publish):
    result = benchmark.pedantic(
        lambda: table6(small_corpus, FS4), rounds=1, iterations=1
    )
    publish("table6_sched_cost", result.render())

    data = result.data

    def avg(name: str) -> float:
        samples = data[name]
        return sum(samples) / len(samples)

    # The robust ordering: the cheap list schedulers are several times
    # cheaper than the needs-driven engines. The three Balance update
    # variants sit in one tier — their relative wall-clock ordering is
    # within single-run noise now that the light update is the default,
    # so only a generous tier bound is asserted.
    assert avg("cp") * 3 <= avg("balance")
    assert avg("sr") * 3 <= avg("balance")
    assert avg("dhasy") * 3 <= avg("help")
    for variant in ("balance-percycle", "balance-fullupdate"):
        assert avg(variant) <= 1.5 * avg("balance")
