"""How tight is the tightest bound against the *true* optimum?

The paper evaluates heuristics against its lower bounds and reports the
fraction of superblocks "scheduled at the bound" — implicitly treating
the bound as achievable. Having exact schedulers (branch-and-bound and
MILP), we can measure what the paper could not: on every superblock small
enough to solve exactly, how often does the tightest bound equal the true
optimal WCT, and how large is the residual gap when it does not?
"""

import statistics

from repro.bounds.superblock_bounds import BoundSuite
from repro.eval.formatting import format_table
from repro.machine.machine import FS4, GP1, GP2
from repro.schedulers.base import get_scheduler
from repro.schedulers.optimal import SearchBudgetExceeded

MAX_OPS = 14
BUDGET = 400_000


def test_bound_vs_true_optimum(benchmark, corpus, publish):
    def run():
        rows = []
        for machine in (GP1, GP2, FS4):
            solved = 0
            exact_hits = 0
            gaps = []
            for sb in corpus:
                if sb.num_operations > MAX_OPS:
                    continue
                try:
                    opt = get_scheduler("optimal")(
                        sb, machine, budget=BUDGET, validate=False
                    )
                except SearchBudgetExceeded:
                    continue
                bound = BoundSuite(sb, machine).compute().tightest
                solved += 1
                assert bound <= opt.wct + 1e-9  # soundness, always
                if opt.wct <= bound + 1e-9:
                    exact_hits += 1
                else:
                    gaps.append(100.0 * (opt.wct - bound) / bound)
            rows.append([
                machine.name,
                solved,
                100.0 * exact_hits / solved if solved else 0.0,
                statistics.fmean(gaps) if gaps else 0.0,
                max(gaps, default=0.0),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Machine", "Solved", "Bound exact %", "Avg residual %", "Max residual %"],
        rows,
        f"Tightest bound vs the true optimum (superblocks <= {MAX_OPS} ops)",
    )
    publish("bound_tightness", text)

    for row in rows:
        assert row[1] >= 10          # enough exactly-solved samples
        assert row[2] >= 70.0        # the bound is exact for most blocks
        assert row[4] <= 25.0        # residual gaps stay moderate
