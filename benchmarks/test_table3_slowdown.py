"""Benchmark: regenerate Table 3 — scheduler slowdown vs the tightest bound.

Paper claims to reproduce in shape:

* Balance beats every primary heuristic on (essentially) every machine
  configuration and approaches Best;
* SR is competitive on narrow machines, CP on wide machines, with DHASY
  in between;
* the average slowdown of Balance across configurations is a small
  fraction of the next-best primary heuristic's.
"""

import statistics

from repro.eval.sched_eval import TABLE_HEURISTICS
from repro.eval.tables import ALL_MACHINES, table3

HEUR = TABLE_HEURISTICS  # includes "best"


def test_table3_slowdowns(benchmark, corpus, publish):
    result = benchmark.pedantic(
        lambda: table3(corpus, heuristics=HEUR), rounds=1, iterations=1
    )
    publish("table3_slowdown", result.render())

    summaries = result.data["summaries"]

    def avg(h: str) -> float:
        return statistics.fmean(
            summaries[m.name].slowdown_percent(h) for m in ALL_MACHINES
        )

    primaries = ("sr", "cp", "gstar", "dhasy", "help")
    # Balance dominates every primary heuristic on average.
    for h in primaries:
        assert avg("balance") <= avg(h) + 1e-9, h
    # Best is the envelope: at most Balance's slowdown.
    assert avg("best") <= avg("balance") + 1e-9
    # The width story: SR beats CP on the narrowest machine, CP beats SR
    # on the widest (FS8 rather than GP4 — GP4's nontrivial set is tiny).
    assert summaries["GP1"].slowdown_percent("sr") <= summaries[
        "GP1"
    ].slowdown_percent("cp")
    assert summaries["FS8"].slowdown_percent("cp") <= summaries[
        "FS8"
    ].slowdown_percent("sr")
