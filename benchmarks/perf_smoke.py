#!/usr/bin/env python
"""Perf smoke runner: times the RJ/Pairwise hot paths and Table 1/3 builds.

Thin wrapper around :mod:`repro.perf.bench` so the suite can run without
installing the package::

    python benchmarks/perf_smoke.py                 # print metrics
    python benchmarks/perf_smoke.py --out benchmarks/BENCH_1.json
    python benchmarks/perf_smoke.py --check         # gate vs committed baseline

Equivalent to ``python -m repro bench``; see ``benchmarks/run_bench.sh``
for the CI invocation.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
