"""Benchmark: regenerate Table 5 — scheduling without profile data.

Schedulers see the paper's no-profile weights (last exit 1000, all side
exits 1); evaluation uses the true exit probabilities.

Paper claims to reproduce in shape:

* SR and CP are unaffected (they ignore weights);
* G* degenerates toward CP (the last branch is always critical);
* Help and Balance are nearly profile-insensitive: their slowdown
  increase is small compared to DHASY's.
"""

import statistics

from repro.eval.tables import ALL_MACHINES, table3, table5

HEUR = ("sr", "cp", "gstar", "dhasy", "help", "balance")


def test_table5_noprofile(benchmark, corpus, publish):
    profiled = table3(corpus, heuristics=HEUR)

    result = benchmark.pedantic(
        lambda: table5(
            corpus,
            heuristics=HEUR,
            profiled_summaries=profiled.data["summaries"],
        ),
        rounds=1,
        iterations=1,
    )
    publish("table5_noprofile", result.render())

    noprof = result.data["summaries"]
    prof = profiled.data["summaries"]

    def delta(h: str) -> float:
        return statistics.fmean(
            noprof[m.name].slowdown_percent(h) for m in ALL_MACHINES
        ) - statistics.fmean(
            prof[m.name].slowdown_percent(h) for m in ALL_MACHINES
        )

    # SR/CP ignore weights entirely.
    assert abs(delta("sr")) < 1e-9
    assert abs(delta("cp")) < 1e-9
    # Balance stays nearly profile-insensitive (small absolute increase).
    assert delta("balance") <= 1.0
