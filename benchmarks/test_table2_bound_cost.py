"""Benchmark: regenerate Table 2 — cost of the bound algorithms.

Paper claims to reproduce in shape:

* the Theorem 1 fast path makes LC cheaper than LC-original;
* Pairwise costs about two orders of magnitude more than RJ/LC, and
  Triplewise is the most expensive of all;
* the cheap bounds (CP, Hu) do the least work.
"""

from repro.eval.tables import table2


def test_table2_bound_costs(benchmark, small_corpus, publish):
    result = benchmark.pedantic(
        lambda: table2(small_corpus), rounds=1, iterations=1
    )
    publish("table2_bound_cost", result.render())

    costs = result.data["costs"]
    assert costs["LC"].average_trips <= costs["LC-original"].average_trips
    assert costs["RJ"].average_trips <= costs["LC"].average_trips
    assert costs["PW"].average_trips >= costs["RJ"].average_trips
    assert costs["TW"].average_trips >= costs["PW"].average_trips * 0.5
