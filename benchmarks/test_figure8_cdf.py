"""Benchmark: regenerate Figure 8 — CDF of extra cycles over the bound.

The paper plots, for the 126.gcc superblocks on FS4, the fraction of
superblocks scheduled without more than X additional dynamic cycles above
the tightest lower bound (log-scale X; the Y-intercept is the fraction of
optimally scheduled superblocks).

Shape claims: Balance's curve tracks Best's across the whole range and
its Y-intercept is the highest among the primary heuristics.
"""

from repro.eval.figures import figure8
from repro.eval.sched_eval import TABLE_HEURISTICS
from repro.machine.machine import FS4


def test_figure8_gcc_fs4(benchmark, corpus, publish):
    gcc = corpus.by_benchmark("gcc")
    result = benchmark.pedantic(
        lambda: figure8(gcc, FS4, heuristics=TABLE_HEURISTICS),
        rounds=1,
        iterations=1,
    )
    publish("figure8_cdf", result.render())

    intercepts = {name: pts[0][1] for name, pts in result.series.items()}
    primaries = ("sr", "cp", "gstar", "dhasy", "help")
    for h in primaries:
        assert intercepts["balance"] >= intercepts[h] - 1e-9, h
    # Balance tracks Best: intercept within a few superblocks.
    assert intercepts["best"] - intercepts["balance"] <= 0.10
    # All curves are CDFs ending at 1.
    for pts in result.series.values():
        assert pts[-1][1] == 1.0
