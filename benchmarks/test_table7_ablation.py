"""Benchmark: regenerate Table 7 — ablation of the Balance components.

Grid: {Help, HlpDel, Help+Bound, HlpDel+Bound, HlpDel+Bound+Tradeoff}
      x {update once per cycle, update once per operation}.

Paper claims to reproduce in shape:

* updating the bound information once per scheduled operation is the
  single largest win;
* the LC-based bounds (Bound) are the second most important factor;
* the full combination (HlpDel+Bound+Tradeoff, per-op) — i.e. Balance —
  is at least as good as plain Help in the same row.
"""

from repro.eval.tables import table7


def test_table7_component_ablation(benchmark, small_corpus, publish):
    result = benchmark.pedantic(
        lambda: table7(small_corpus), rounds=1, iterations=1
    )
    publish("table7_ablation", result.render())

    per_cycle, per_op = result.rows
    combos = result.headers[1:]
    help_idx = combos.index("Help") + 1
    balance_idx = combos.index("HlpDel+Bound+Tradeoff") + 1

    # Per-op updating dominates per-cycle updating for the full config.
    assert per_op[balance_idx] <= per_cycle[balance_idx] + 1e-9
    # The full Balance beats plain Help within the per-op row.
    assert per_op[balance_idx] <= per_op[help_idx] + 1e-9
