"""Benchmarks for the extension experiments.

Not paper tables — these probe the design space around them:

* per-SPECint95-program slowdown breakdown (the paper discusses gcc
  separately; this covers all eight programs);
* graceful degradation under profile noise (a finer Table 5);
* the G* family under different secondary heuristics.
"""

from repro.eval.extensions import (
    gstar_secondary_table,
    per_benchmark_table,
    profile_noise_sweep,
)
from repro.machine.machine import FS4


def test_per_benchmark_breakdown(benchmark, corpus, publish):
    result = benchmark.pedantic(
        lambda: per_benchmark_table(corpus, FS4), rounds=1, iterations=1
    )
    publish("ext_per_benchmark", result.render())
    # Balance is within the two best heuristics for most programs.
    good = 0
    for row in result.rows:
        values = row[2:]
        balance = values[-1]
        if sorted(values).index(balance) <= 1:
            good += 1
    assert good >= len(result.rows) // 2


def test_profile_noise_degradation(benchmark, corpus, publish):
    result = benchmark.pedantic(
        lambda: profile_noise_sweep(
            corpus, FS4, heuristics=("dhasy", "help", "balance")
        ),
        rounds=1,
        iterations=1,
    )
    publish("ext_profile_noise", result.render())
    # Balance under full noise stays no worse than DHASY under full noise.
    assert result.data[1.0]["balance"] <= result.data[1.0]["dhasy"] + 1.0


def test_gstar_family(benchmark, corpus, publish):
    result = benchmark.pedantic(
        lambda: gstar_secondary_table(corpus, FS4), rounds=1, iterations=1
    )
    publish("ext_gstar_family", result.render())
    assert len(result.rows) == 3
