"""Ablation benchmarks for the bound-aggregation design choices.

DESIGN.md calls out two implementation decisions beyond the paper:

* **LP combination vs Theorem 3 averaging** — the paper aggregates the
  per-pair inequalities by uniform averaging; this library can also solve
  the small LP over all collected inequalities, which provably dominates
  the average. This bench measures how often and by how much.
* **Theorem 1 fast path** — the fraction of operations whose LC solve is
  skipped (the paper reports ~30% of operations have a unique operand).
"""

import statistics

from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc
from repro.bounds.superblock_bounds import BoundSuite
from repro.eval.formatting import format_table
from repro.machine.machine import FS4, GP2


def test_lp_vs_theorem3_average(benchmark, corpus, publish):
    def run():
        rows = []
        for machine in (GP2, FS4):
            lp_wins = 0
            gaps = []
            considered = 0
            for sb in corpus:
                if sb.num_branches < 2:
                    continue
                suite = BoundSuite(sb, machine, include_triplewise=False)
                avg = suite.theorem3_average()
                lp = suite.lp_bound(include_triples=False)
                considered += 1
                if lp > avg + 1e-9:
                    lp_wins += 1
                    gaps.append(100.0 * (lp - avg) / avg)
            rows.append([
                machine.name,
                considered,
                lp_wins,
                statistics.fmean(gaps) if gaps else 0.0,
                max(gaps, default=0.0),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Machine", "Superblocks", "LP tighter", "Avg gain %", "Max gain %"],
        rows,
        "Ablation: LP combination vs Theorem 3 averaging (pairwise only)",
    )
    publish("ablation_lp_vs_avg", text)
    # The LP never loses to the average (it includes it as a dual point).
    for machine_row in rows:
        assert machine_row[3] >= 0.0


def test_theorem1_fast_path_rate(benchmark, corpus, publish):
    def run():
        skipped = 0
        total = 0
        for sb in corpus:
            counters = Counters()
            early_rc(sb.graph, FS4, counters, fast_path=True)
            skipped += counters.get("lc.trivial")
            total += sb.num_operations
        return skipped, total

    skipped, total = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = 100.0 * skipped / total
    publish(
        "ablation_theorem1",
        f"Theorem 1 fast path: {skipped}/{total} operations "
        f"({rate:.1f}%) skip the recursive LC solve\n"
        f"(the paper reports ~30% of operations have a unique input "
        f"operand and no other dependence)",
    )
    assert 5.0 <= rate <= 80.0
