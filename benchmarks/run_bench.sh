#!/usr/bin/env bash
# CI perf gate: run the smoke suite on the pinned seeded corpus and fail
# when any headline metric regresses more than 20% versus the committed
# benchmarks/BENCH_1.json. Extra arguments are passed through, e.g.
#   benchmarks/run_bench.sh --out benchmarks/BENCH_1.json   # refresh baseline
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# Warm-cache speedup gate (skipped on CI runners: wall-clock based).
python -m pytest tests/test_cache_integration.py -m perf -q
exec python benchmarks/perf_smoke.py --check benchmarks/BENCH_1.json "$@"
